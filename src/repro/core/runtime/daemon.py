"""The reconfiguration daemon.

"The runtime scheduler/daemon will read periodically the system status
and the History file in order to decide at runtime what functions should
be loaded on the reconfiguration block."

Every ``period_ns`` the daemon ranks recently-called functions by the
*benefit* of hardware acceleration -- recent call volume times the
predicted per-call saving (software minus hardware latency at the
function's typical size) -- and loads the best-fitting module variants
for the top functions into the domain's regions, preferring Workers
whose fabric is idle and evicting least-recently-used modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Tuple

from repro.core.compute_node import ComputeNode
from repro.core.runtime.history import ExecutionHistory
from repro.core.unilogic import UnilogicDomain
from repro.core.worker import FunctionRegistry
from repro.fabric.module_library import ModuleLibrary
from repro.fabric.region import RegionState
from repro.sim import Timeout


@dataclass
class DaemonStats:
    evaluations: int = 0
    loads_triggered: int = 0
    functions_loaded: List[str] = field(default_factory=list)


class ReconfigurationDaemon:
    """Periodic history-driven module loader."""

    def __init__(
        self,
        node: ComputeNode,
        unilogic: UnilogicDomain,
        library: ModuleLibrary,
        registry: FunctionRegistry,
        history: ExecutionHistory,
        period_ns: float = 500_000.0,
        window_ns: Optional[float] = None,
        max_loads_per_period: int = 2,
        min_benefit_ns: float = 0.0,
        telemetry=None,
    ) -> None:
        if period_ns <= 0:
            raise ValueError("period must be positive")
        if max_loads_per_period < 1:
            raise ValueError("max_loads_per_period must be >= 1")
        self.node = node
        self.unilogic = unilogic
        self.library = library
        self.registry = registry
        self.history = history
        self.period_ns = period_ns
        self.window_ns = window_ns if window_ns is not None else 4 * period_ns
        self.max_loads_per_period = max_loads_per_period
        self.min_benefit_ns = min_benefit_ns
        self.telemetry = telemetry if telemetry is not None and telemetry.enabled else None
        self.stats = DaemonStats()
        self._running = True

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def rank_candidates(self) -> List[Tuple[float, str]]:
        """(benefit_ns, function) for unhosted, acceleratable functions."""
        since = max(0.0, self.node.sim.now - self.window_ns)
        counts = self.history.call_counts(since=since)
        hosted = set()
        for w in self.node.workers:
            hosted.update(w.fabric.loaded_functions())
        out = []
        for function, calls in counts.items():
            if function in hosted or function not in self.library:
                continue
            recs = self.history.records(function, since=since)
            mean_items = sum(r.items for r in recs) / len(recs)
            items = max(1, int(mean_items))
            sw_ns = self.history.mean_latency(function, "sw")
            if sw_ns is None:
                continue
            module = self.library.best_variant(function, items_hint=items)
            if module is None:
                continue
            hw_ns = module.latency_ns(items)
            benefit = calls * (sw_ns - hw_ns)
            if benefit > self.min_benefit_ns:
                out.append((benefit, function))
        out.sort(reverse=True)
        return out

    def _target_worker(self):
        """Prefer the Worker with the most idle fabric (fewest READY
        regions), ties to lowest id."""
        def idle_key(w):
            ready = sum(
                1 for r in w.fabric.regions if r.state is not RegionState.EMPTY
            )
            return (ready, w.worker_id)

        return min(self.node.workers, key=idle_key)

    def evaluate(self) -> Generator:
        """One evaluation pass (a simulation process -- loads take time)."""
        self.stats.evaluations += 1
        for benefit, function in self.rank_candidates()[: self.max_loads_per_period]:
            worker = self._target_worker()
            capacity = max(
                (r.capacity for r in worker.fabric.regions),
                key=lambda c: c.area_units(),
            )
            module = self.library.best_variant(function, capacity=capacity)
            if module is None:
                continue
            region = yield from worker.load_module(module)
            if region is not None:
                self.stats.loads_triggered += 1
                self.stats.functions_loaded.append(function)
                if self.telemetry is not None:
                    self.telemetry.event(
                        "daemon.load",
                        f"{self.node.name}.daemon",
                        function=function,
                        worker=worker.worker_id,
                        benefit_ns=benefit,
                    )

    def run(self) -> Generator:
        """The daemon's periodic loop (spawn as a simulation process)."""
        while self._running:
            yield Timeout(self.period_ns)
            if not self._running:
                return
            yield from self.evaluate()
