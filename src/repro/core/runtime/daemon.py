"""The reconfiguration daemon.

"The runtime scheduler/daemon will read periodically the system status
and the History file in order to decide at runtime what functions should
be loaded on the reconfiguration block."

Every ``period_ns`` the daemon ranks recently-called functions by the
*benefit* of hardware acceleration -- decayed call volume times the
predicted per-call saving (software minus hardware latency at the
function's typical size) -- and loads the best-fitting module variants
for the top functions into the domain's regions, preferring Workers
whose fabric is idle and evicting least-recently-used modules.

Hotness is an exponentially-decayed count, not a raw window sum: each
control period the previous score is multiplied by ``decay`` before the
new period's calls are added.  A function that was hot and went quiet
therefore *loses* rank over successive periods instead of riding a
four-period window forever, and once its score stays below
``evict_hotness`` for ``evict_after_periods`` consecutive evaluations
(and its regions have been idle for a full window) the daemon blanks its
regions so the fabric is free for currently-hot work.  The streak
requirement is the hysteresis: one quiet period never unloads anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.core.compute_node import ComputeNode
from repro.core.runtime.history import ExecutionHistory
from repro.core.unilogic import UnilogicDomain
from repro.core.worker import FunctionRegistry
from repro.fabric.module_library import ModuleLibrary
from repro.fabric.region import RegionState
from repro.sim import Timeout


@dataclass
class DaemonStats:
    evaluations: int = 0
    loads_triggered: int = 0
    functions_loaded: List[str] = field(default_factory=list)
    evictions: int = 0
    functions_evicted: List[str] = field(default_factory=list)


class ReconfigurationDaemon:
    """Periodic history-driven module loader."""

    def __init__(
        self,
        node: ComputeNode,
        unilogic: UnilogicDomain,
        library: ModuleLibrary,
        registry: FunctionRegistry,
        history: ExecutionHistory,
        period_ns: float = 500_000.0,
        window_ns: Optional[float] = None,
        max_loads_per_period: int = 2,
        min_benefit_ns: float = 0.0,
        decay: float = 0.5,
        evict_hotness: float = 0.5,
        evict_after_periods: int = 3,
        max_evictions_per_period: int = 1,
        telemetry=None,
    ) -> None:
        if period_ns <= 0:
            raise ValueError("period must be positive")
        if max_loads_per_period < 1:
            raise ValueError("max_loads_per_period must be >= 1")
        if not 0.0 <= decay < 1.0:
            raise ValueError("decay must be in [0, 1)")
        if evict_after_periods < 1:
            raise ValueError("evict_after_periods must be >= 1")
        self.node = node
        self.unilogic = unilogic
        self.library = library
        self.registry = registry
        self.history = history
        self.period_ns = period_ns
        self.window_ns = window_ns if window_ns is not None else 4 * period_ns
        self.max_loads_per_period = max_loads_per_period
        self.min_benefit_ns = min_benefit_ns
        self.decay = decay
        self.evict_hotness = evict_hotness
        self.evict_after_periods = evict_after_periods
        self.max_evictions_per_period = max_evictions_per_period
        self.telemetry = telemetry if telemetry is not None and telemetry.enabled else None
        self.stats = DaemonStats()
        self._running = True
        #: decayed per-function call score; refreshed once per sim instant
        self.hotness: Dict[str, float] = {}
        self._last_refresh_ns = 0.0
        self._refreshed = False
        self._cold_streak: Dict[str, int] = {}

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def _refresh_hotness(self) -> None:
        """Fold calls since the last refresh into the decayed scores.

        Idempotent at one sim instant so ``rank_candidates`` may be
        called standalone (tests, inspection) without double counting.
        """
        now = self.node.sim.now
        if self._refreshed and now <= self._last_refresh_ns:
            return
        fresh = self.history.call_counts(since=self._last_refresh_ns)
        next_hotness: Dict[str, float] = {}
        for function in set(self.hotness) | set(fresh):
            score = self.hotness.get(function, 0.0) * self.decay + fresh.get(
                function, 0
            )
            if score > 1e-9:
                next_hotness[function] = score
        self.hotness = next_hotness
        self._last_refresh_ns = now
        self._refreshed = True

    def rank_candidates(self) -> List[Tuple[float, str]]:
        """(benefit_ns, function) for unhosted, acceleratable functions."""
        self._refresh_hotness()
        since = max(0.0, self.node.sim.now - self.window_ns)
        hosted = set()
        for w in self.node.workers:
            hosted.update(w.fabric.loaded_functions())
        out = []
        for function, score in self.hotness.items():
            if function in hosted or function not in self.library:
                continue
            # load floor = eviction threshold: anything colder would be
            # an immediate eviction candidate, so loading it is churn
            if score < self.evict_hotness:
                continue
            recs = self.history.records(function, since=since)
            if not recs:
                recs = self.history.records(function)
            if not recs:
                continue
            mean_items = sum(r.items for r in recs) / len(recs)
            items = max(1, int(mean_items))
            sw_ns = self.history.mean_latency(function, "sw")
            if sw_ns is None:
                continue
            module = self.library.best_variant(function, items_hint=items)
            if module is None:
                continue
            hw_ns = module.latency_ns(items)
            benefit = score * (sw_ns - hw_ns)
            if benefit > self.min_benefit_ns:
                out.append((benefit, function))
        out.sort(reverse=True)
        return out

    def _target_worker(self):
        """Prefer the Worker with the most idle fabric (fewest READY
        regions), ties to lowest id."""
        def idle_key(w):
            ready = sum(
                1 for r in w.fabric.regions if r.state is not RegionState.EMPTY
            )
            return (ready, w.worker_id)

        return min(self.node.workers, key=idle_key)

    def _hosted_regions(self) -> Dict[str, List[Tuple[object, object]]]:
        """function -> [(worker, region)] over all READY regions."""
        hosted: Dict[str, List[Tuple[object, object]]] = {}
        for w in self.node.workers:
            for r in w.fabric.regions:
                if r.state is RegionState.READY and r.function:
                    hosted.setdefault(r.function, []).append((w, r))
        return hosted

    def _evict_cold(self) -> None:
        """Blank regions whose function has stayed cold for a full streak.

        Hysteresis: a function must score below ``evict_hotness`` for
        ``evict_after_periods`` consecutive evaluations, and a region is
        only blanked when it has not been used for a whole window --
        in-flight invocations keep their region alive.
        """
        hosted = self._hosted_regions()
        for function in list(self._cold_streak):
            if function not in hosted:
                del self._cold_streak[function]
        for function in sorted(hosted):
            if self.hotness.get(function, 0.0) < self.evict_hotness:
                self._cold_streak[function] = self._cold_streak.get(function, 0) + 1
            else:
                self._cold_streak[function] = 0

        now = self.node.sim.now
        evicted = 0
        for function in sorted(hosted):
            if evicted >= self.max_evictions_per_period:
                return
            if self._cold_streak.get(function, 0) < self.evict_after_periods:
                continue
            for worker, region in hosted[function]:
                if evicted >= self.max_evictions_per_period:
                    break
                if region.state is not RegionState.READY:
                    continue
                if region.last_used_at > now - self.window_ns:
                    continue
                worker.reconfig.unload(region)
                evicted += 1
                self.stats.evictions += 1
                self.stats.functions_evicted.append(function)
                if self.telemetry is not None:
                    self.telemetry.event(
                        "daemon.evict",
                        f"{self.node.name}.daemon",
                        function=function,
                        worker=worker.worker_id,
                        region=region.region_id,
                        cold_periods=self._cold_streak[function],
                    )
            self._cold_streak[function] = 0

    def evaluate(self) -> Generator:
        """One evaluation pass (a simulation process -- loads take time)."""
        self.stats.evaluations += 1
        for benefit, function in self.rank_candidates()[: self.max_loads_per_period]:
            worker = self._target_worker()
            capacity = max(
                (r.capacity for r in worker.fabric.regions),
                key=lambda c: c.area_units(),
            )
            module = self.library.best_variant(function, capacity=capacity)
            if module is None:
                continue
            region = yield from worker.load_module(module)
            if region is not None:
                self.stats.loads_triggered += 1
                self.stats.functions_loaded.append(function)
                if self.telemetry is not None:
                    self.telemetry.event(
                        "daemon.load",
                        f"{self.node.name}.daemon",
                        function=function,
                        worker=worker.worker_id,
                        benefit_ns=benefit,
                    )
        self._evict_cold()

    def run(self) -> Generator:
        """The daemon's periodic loop (spawn as a simulation process)."""
        while self._running:
            yield Timeout(self.period_ns)
            if not self._running:
                return
            yield from self.evaluate()
