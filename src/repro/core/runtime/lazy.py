"""Local work queues with lazy remote-status inference.

Section 4.2: "To curb the overhead of monitoring remote status, we will
implement local work queues per worker and infer (approximately) the
status of remote workers via the status of the local queue, using
techniques inspired by Lazy Scheduling."

:class:`LocalWorkQueue` is one Worker's queue; :class:`LazyStatusTracker`
is the load-inference component.  In *eager* mode every query polls the
remote queue (one status message each); in *lazy* mode a cached snapshot
is used until it expires, so status traffic collapses by the
refresh-ratio -- the quantity the CLAIM-LAZY experiment measures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.apps.taskgraph import Task
from repro.sim import Simulator, Store


class LocalWorkQueue:
    """One Worker's task queue (a simulation Store plus depth stats)."""

    def __init__(self, sim: Simulator, worker_id: int) -> None:
        self.sim = sim
        self.worker_id = worker_id
        self.store = Store(sim, name=f"queue.w{worker_id}")
        self.enqueued = 0
        self.completed = 0

    def push(self, task: Task) -> None:
        self.enqueued += 1
        self.store.put(task)

    def pop(self):
        """Waitable get: ``task = yield queue.pop()``."""
        return self.store.get()

    def mark_done(self) -> None:
        self.completed += 1

    @property
    def depth(self) -> int:
        return len(self.store)

    @property
    def outstanding(self) -> int:
        """Tasks enqueued but not yet completed (queued + in-flight)."""
        return self.enqueued - self.completed


class LazyStatusTracker:
    """Approximate remote-load view with bounded monitoring traffic."""

    def __init__(
        self,
        sim: Simulator,
        queues: List[LocalWorkQueue],
        refresh_interval_ns: float = 10_000.0,
        lazy: bool = True,
    ) -> None:
        if refresh_interval_ns <= 0:
            raise ValueError("refresh interval must be positive")
        self.sim = sim
        self.queues = queues
        self.refresh_interval_ns = refresh_interval_ns
        self.lazy = lazy
        self.status_messages = 0
        self._cache: Dict[int, int] = {}
        self._cached_at: Dict[int, float] = {}

    def estimated_load(self, observer: int, target: int) -> int:
        """``observer``'s belief about ``target``'s outstanding work."""
        if target == observer:
            return self.queues[target].outstanding  # local state is free
        if not self.lazy:
            self.status_messages += 1
            return self.queues[target].outstanding
        now = self.sim.now
        cached_at = self._cached_at.get(target)
        if cached_at is None or now - cached_at >= self.refresh_interval_ns:
            self.status_messages += 1
            self._cache[target] = self.queues[target].outstanding
            self._cached_at[target] = now
        return self._cache[target]

    def least_loaded(self, observer: int) -> int:
        """The worker believed least loaded (ties to lowest id)."""
        return min(
            range(len(self.queues)),
            key=lambda w: (self.estimated_load(observer, w), w),
        )

    def staleness_error(self) -> float:
        """Mean absolute difference between beliefs and reality now."""
        if not self._cache:
            return 0.0
        errors = [
            abs(self._cache[w] - self.queues[w].outstanding) for w in self._cache
        ]
        return sum(errors) / len(errors)
