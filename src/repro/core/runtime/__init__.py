"""The ECOSCALE runtime system (Fig. 5).

Per Section 4.2:

- one scheduler per Worker with local work queues
  (:mod:`repro.core.runtime.scheduler`, :mod:`repro.core.runtime.lazy`),
- a work-and-data distribution algorithm in the Execution Engine
  (:mod:`repro.core.runtime.distribution`,
  :mod:`repro.core.runtime.engine`),
- an Execution History store consulted by a periodic runtime daemon that
  "decides at runtime what functions should be loaded on the
  reconfiguration block" (:mod:`repro.core.runtime.history`,
  :mod:`repro.core.runtime.daemon`),
- input-dependent execution-time/energy models (regression, PCA, kNN)
  used to "select the best device to execute a function"
  (:mod:`repro.core.runtime.models`).
"""

from repro.core.runtime.checkpoint import (
    SNAPSHOT_FORMAT_VERSION,
    CheckpointManager,
    CheckpointPolicy,
    JobProgress,
    Snapshot,
    SnapshotStore,
    daly_interval_ns,
    restore_rngs,
    young_interval_ns,
)
from repro.core.runtime.cluster_engine import ClusterEngine, ClusterRunReport
from repro.core.runtime.daemon import DaemonStats, ReconfigurationDaemon
from repro.core.runtime.distribution import DistributionPolicy, WorkDistributor
from repro.core.runtime.engine import ExecutionEngine, RunReport
from repro.core.runtime.faults import (
    FaultTolerancePolicy,
    TaskSupervisor,
    WorkerFailureRecord,
)
from repro.core.runtime.history import ExecutionHistory, ExecutionRecord
from repro.core.runtime.jobs import (
    JobHandle,
    JobManager,
    JobRecord,
    JobRegistry,
    JobState,
)
from repro.core.runtime.lazy import LazyStatusTracker, LocalWorkQueue
from repro.core.runtime.monitoring import (
    CallProfile,
    CounterSnapshot,
    FunctionInstrumentation,
    ModelActuator,
    PerformanceMonitor,
    Projection,
)
from repro.core.runtime.models import (
    DeviceSelector,
    KnnPredictor,
    LinearModel,
    PcaRegressor,
    kernel_features,
)
from repro.core.runtime.policy import (
    POLICIES,
    EnergyAwarePolicy,
    GreedyHardwarePolicy,
    LocalityPolicy,
    PolicyConfig,
    SchedulingPolicy,
    make_policy,
)
from repro.core.runtime.report import JobOutcome, MachineReport
from repro.core.runtime.scheduler import WorkItem, WorkerScheduler

__all__ = [
    "CallProfile",
    "CheckpointManager",
    "CheckpointPolicy",
    "ClusterEngine",
    "ClusterRunReport",
    "CounterSnapshot",
    "DaemonStats",
    "FunctionInstrumentation",
    "ModelActuator",
    "PerformanceMonitor",
    "Projection",
    "DeviceSelector",
    "DistributionPolicy",
    "ExecutionEngine",
    "ExecutionHistory",
    "ExecutionRecord",
    "FaultTolerancePolicy",
    "TaskSupervisor",
    "WorkerFailureRecord",
    "KnnPredictor",
    "LazyStatusTracker",
    "LinearModel",
    "LocalWorkQueue",
    "PcaRegressor",
    "ReconfigurationDaemon",
    "RunReport",
    "WorkDistributor",
    "WorkItem",
    "WorkerScheduler",
    "kernel_features",
    # policy layer
    "POLICIES",
    "EnergyAwarePolicy",
    "GreedyHardwarePolicy",
    "LocalityPolicy",
    "PolicyConfig",
    "SchedulingPolicy",
    "make_policy",
    # session/job layer
    "JobHandle",
    "JobManager",
    "JobOutcome",
    "JobRecord",
    "JobRegistry",
    "JobState",
    "MachineReport",
    # checkpoint/restart
    "JobProgress",
    "SNAPSHOT_FORMAT_VERSION",
    "Snapshot",
    "SnapshotStore",
    "daly_interval_ns",
    "restore_rngs",
    "young_interval_ns",
]
