"""Checkpoint/restart: snapshot job progress, replay only lost work.

Per-task retry (:mod:`repro.core.runtime.faults`) survives individual
Worker deaths, but a coordinator-scale or rack-scale failure still loses
the whole run.  This module is the classic HPC answer (Ábrahám et al.,
"Preparing HPC Applications for Exascale"): periodically snapshot the
run's progress, and after a catastrophic failure rebuild the machine and
resume from the latest snapshot, re-executing only the work that came
after it.

Three pieces:

- :class:`CheckpointPolicy` -- how often to snapshot.  ``fixed`` mode
  uses ``interval_ns`` verbatim; ``daly`` mode computes the optimal
  interval from the configured MTBF and the *measured* checkpoint cost
  via Daly's higher-order formula (:func:`daly_interval_ns`), the
  standard tuning for exascale MTBFs.
- :class:`Snapshot` -- one recovery point: per-job completed-task sets,
  fabric region bindings, registered RNG states and the simulated
  clock, all serialized to a canonical versioned JSON format
  (:meth:`Snapshot.to_json` / :meth:`Snapshot.from_json` round-trip
  byte-identically).
- :class:`CheckpointManager` -- a simulation process attached to one
  :class:`~repro.core.runtime.jobs.JobManager` that captures snapshots
  on the policy's cadence (charging ``checkpoint_cost_ns`` of simulated
  quiesce time per snapshot) and persists them through a
  :class:`SnapshotStore` (``ckpt-<seq>.json`` files a later process
  restores from: ``python -m repro checkpoint save/restore/ls``).

Restore itself is workload-level: the snapshot records *what* ran (the
workload metadata plus per-job graph signatures), a harness rebuilds the
machine and graphs from that metadata, warps the fresh simulator's clock
to the snapshot time (:meth:`~repro.sim.engine.Simulator.warp_to`) and
resubmits every unfinished job with its ``completed`` index set -- see
:func:`repro.chaos.checkpoint_experiment.restore_from_snapshot`.

A manager that is never constructed costs nothing, and a run without one
is byte-identical to seed (the telemetry NULL-hub pattern).
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Generator, List, Optional

from repro.fabric.region import RegionState
from repro.sim import Timeout, spawn

#: bump when the on-disk snapshot schema changes; restore refuses
#: snapshots from a different format generation
SNAPSHOT_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# optimal-interval math (Young 1974, Daly 2006)
# ----------------------------------------------------------------------


def young_interval_ns(cost_ns: float, mtbf_ns: float) -> float:
    """Young's first-order optimum: ``sqrt(2 * cost * MTBF)``."""
    if cost_ns <= 0 or mtbf_ns <= 0:
        raise ValueError("cost and MTBF must be positive")
    return math.sqrt(2.0 * cost_ns * mtbf_ns)


def daly_interval_ns(cost_ns: float, mtbf_ns: float) -> float:
    """Daly's higher-order optimum checkpoint interval.

    For ``cost < 2 * MTBF``::

        sqrt(2 c M) * [1 + (1/3) sqrt(c / 2M) + (1/9)(c / 2M)] - c

    and simply ``MTBF`` otherwise (checkpointing that expensive cannot
    amortize; take the whole MTBF between snapshots).
    """
    if cost_ns <= 0 or mtbf_ns <= 0:
        raise ValueError("cost and MTBF must be positive")
    if cost_ns >= 2.0 * mtbf_ns:
        return mtbf_ns
    ratio = cost_ns / (2.0 * mtbf_ns)
    return (
        math.sqrt(2.0 * cost_ns * mtbf_ns)
        * (1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0)
        - cost_ns
    )


@dataclass(frozen=True)
class CheckpointPolicy:
    """How often (and how expensively) a run snapshots itself."""

    interval_ns: Optional[float] = None     # fixed cadence (mode="fixed")
    mode: str = "fixed"                     # "fixed" | "daly"
    mtbf_ns: Optional[float] = None         # required for mode="daly"
    checkpoint_cost_ns: float = 5_000.0     # simulated quiesce+write time
    max_snapshots: int = 0                  # retained in memory/store; 0 = all

    def __post_init__(self) -> None:
        if self.mode not in ("fixed", "daly"):
            raise ValueError(f"unknown checkpoint mode {self.mode!r}")
        if self.mode == "fixed":
            if self.interval_ns is None or self.interval_ns <= 0:
                raise ValueError("fixed mode needs a positive interval_ns")
        else:
            if self.mtbf_ns is None or self.mtbf_ns <= 0:
                raise ValueError("daly mode needs a positive mtbf_ns")
        if self.checkpoint_cost_ns < 0:
            raise ValueError("checkpoint cost must be non-negative")
        if self.max_snapshots < 0:
            raise ValueError("max_snapshots must be non-negative")

    def effective_interval_ns(self, measured_cost_ns: Optional[float] = None) -> float:
        """The cadence to use *now*: fixed, or Daly from MTBF and the
        measured per-snapshot cost (falling back to the configured
        cost before the first measurement exists)."""
        if self.mode == "fixed":
            return float(self.interval_ns)
        cost = (
            measured_cost_ns
            if measured_cost_ns is not None and measured_cost_ns > 0
            else max(self.checkpoint_cost_ns, 1.0)
        )
        return daly_interval_ns(cost, float(self.mtbf_ns))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "interval_ns": self.interval_ns,
            "mode": self.mode,
            "mtbf_ns": self.mtbf_ns,
            "checkpoint_cost_ns": self.checkpoint_cost_ns,
            "max_snapshots": self.max_snapshots,
        }


# ----------------------------------------------------------------------
# the snapshot format
# ----------------------------------------------------------------------


def _graph_signature(graph) -> List[List[Any]]:
    """(function, items, layer-depth) rows, independent of task ids --
    the same signature :func:`repro.chaos.graph_signature` uses, in
    JSON-able form (kept local: core must not import the chaos layer)."""
    return [
        [task.function, task.items, depth]
        for depth, layer in enumerate(graph.layers())
        for task in layer
    ]


@dataclass
class JobProgress:
    """One job's recovery state inside a snapshot."""

    job_id: int
    policy: str
    priority: int
    dataflow: bool
    total_tasks: int
    completed: List[int]                    # graph indices, ascending
    signature: List[List[Any]] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return len(self.completed) >= self.total_tasks

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "policy": self.policy,
            "priority": self.priority,
            "dataflow": self.dataflow,
            "total_tasks": self.total_tasks,
            "completed": list(self.completed),
            "signature": [list(row) for row in self.signature],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobProgress":
        return cls(
            job_id=int(data["job_id"]),
            policy=str(data["policy"]),
            priority=int(data["priority"]),
            dataflow=bool(data["dataflow"]),
            total_tasks=int(data["total_tasks"]),
            completed=sorted(int(i) for i in data["completed"]),
            signature=[list(row) for row in data.get("signature", [])],
        )


@dataclass
class Snapshot:
    """One recovery point, serializable to canonical versioned JSON."""

    seq: int
    taken_at_ns: float
    workload: Dict[str, Any] = field(default_factory=dict)
    jobs: List[JobProgress] = field(default_factory=list)
    fabric: List[Dict[str, Any]] = field(default_factory=list)
    rng: Dict[str, Any] = field(default_factory=dict)
    checkpoint_cost_ns: float = 0.0
    format_version: int = SNAPSHOT_FORMAT_VERSION

    def job(self, job_id: int) -> Optional[JobProgress]:
        for progress in self.jobs:
            if progress.job_id == job_id:
                return progress
        return None

    @property
    def tasks_completed(self) -> int:
        return sum(len(j.completed) for j in self.jobs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format_version": self.format_version,
            "seq": self.seq,
            "taken_at_ns": self.taken_at_ns,
            "checkpoint_cost_ns": self.checkpoint_cost_ns,
            "workload": {k: self.workload[k] for k in sorted(self.workload)},
            "jobs": [j.to_dict() for j in self.jobs],
            "fabric": list(self.fabric),
            "rng": {k: self.rng[k] for k in sorted(self.rng)},
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON (sorted keys: round-trips byte-identically)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Snapshot":
        version = int(data.get("format_version", -1))
        if version != SNAPSHOT_FORMAT_VERSION:
            raise ValueError(
                f"snapshot format v{version} unsupported "
                f"(this build reads v{SNAPSHOT_FORMAT_VERSION})"
            )
        return cls(
            seq=int(data["seq"]),
            taken_at_ns=float(data["taken_at_ns"]),
            workload=dict(data.get("workload", {})),
            jobs=[JobProgress.from_dict(j) for j in data.get("jobs", [])],
            fabric=[dict(b) for b in data.get("fabric", [])],
            rng=dict(data.get("rng", {})),
            checkpoint_cost_ns=float(data.get("checkpoint_cost_ns", 0.0)),
            format_version=version,
        )

    @classmethod
    def from_json(cls, text: str) -> "Snapshot":
        return cls.from_dict(json.loads(text))


def restore_rngs(snapshot: Snapshot) -> Dict[str, random.Random]:
    """Rebuild every RNG registered at capture time, state and all."""
    out: Dict[str, random.Random] = {}
    for name, state in snapshot.rng.items():
        rng = random.Random()
        version, internal, gauss_next = state
        rng.setstate((int(version), tuple(int(v) for v in internal), gauss_next))
        out[name] = rng
    return out


# ----------------------------------------------------------------------
# on-disk persistence
# ----------------------------------------------------------------------


class SnapshotStore:
    """A directory of ``ckpt-<seq>.json`` files (the canonical format)."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, snapshot: Snapshot) -> Path:
        return self.root / f"ckpt-{snapshot.seq:05d}.json"

    def save(self, snapshot: Snapshot) -> Path:
        path = self.path_for(snapshot)
        path.write_text(snapshot.to_json(indent=2) + "\n")
        return path

    def list(self) -> List[Path]:
        return sorted(self.root.glob("ckpt-*.json"))

    def load(self, path) -> Snapshot:
        return Snapshot.from_json(Path(path).read_text())

    def load_latest(self) -> Optional[Snapshot]:
        paths = self.list()
        if not paths:
            return None
        return self.load(paths[-1])

    def prune(self, keep: int) -> None:
        """Drop the oldest files beyond ``keep`` (0 = keep everything)."""
        if keep <= 0:
            return
        for path in self.list()[:-keep]:
            path.unlink()


# ----------------------------------------------------------------------
# the manager
# ----------------------------------------------------------------------


class CheckpointManager:
    """Periodic snapshot process over one JobManager's jobs."""

    def __init__(
        self,
        manager,
        policy: CheckpointPolicy,
        store: Optional[SnapshotStore] = None,
        workload: Optional[Dict[str, Any]] = None,
        telemetry=None,
    ) -> None:
        self.manager = manager
        self.engine = manager.engine
        self.sim = manager.sim
        self.policy = policy
        self.store = store
        self.workload = dict(workload or {})
        self.telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        self.snapshots: List[Snapshot] = []
        self.measured_cost_ns: Optional[float] = None
        self._rngs: Dict[str, random.Random] = {}
        self._seq = 0
        self._running = True
        self._proc = None

    # ------------------------------------------------------------------
    def register_rng(self, name: str, rng: random.Random) -> None:
        """Snapshot this RNG's state with every checkpoint (restore via
        :func:`restore_rngs` keeps seeded streams exactly aligned)."""
        self._rngs[name] = rng

    def start(self) -> None:
        if self._proc is None:
            self._proc = spawn(self.sim, self.run(), name="checkpoint")

    def stop(self) -> None:
        self._running = False
        if self._proc is not None and self._proc.alive:
            self._proc.interrupt("checkpointing stopped")
        self._proc = None

    def run(self) -> Generator:
        """The cadence loop (a simulation process).  Stops by itself
        when every job has finished -- there is nothing left to lose."""
        while self._running:
            yield Timeout(self.policy.effective_interval_ns(self.measured_cost_ns))
            if not self._running:
                return
            if self.manager.handles and all(
                h.finished for h in self.manager.handles
            ):
                return
            yield from self.checkpoint()

    # ------------------------------------------------------------------
    def capture(self) -> Snapshot:
        """Build a snapshot of *right now* (no simulated cost charged)."""
        jobs: List[JobProgress] = []
        for handle in self.manager.handles:
            index_of = {
                t.task_id: i for i, t in enumerate(handle.graph.tasks)
            }
            done = set(handle.completed)
            for item in handle.items:
                if item.done.triggered and not item.failed:
                    idx = index_of.get(item.task.task_id)
                    if idx is not None:
                        done.add(idx)
            jobs.append(
                JobProgress(
                    job_id=handle.job_id,
                    policy=handle.policy.name,
                    priority=handle.priority,
                    dataflow=handle.dataflow,
                    total_tasks=len(handle.graph.tasks),
                    completed=sorted(done),
                    signature=_graph_signature(handle.graph),
                )
            )
        fabric: List[Dict[str, Any]] = []
        for worker in self.engine.node.workers:
            for region in worker.fabric.regions:
                if region.state is RegionState.READY and region.module is not None:
                    fabric.append(
                        {
                            "worker": worker.worker_id,
                            "region": region.region_id,
                            "function": region.module.function,
                            "module": region.module.name,
                        }
                    )
        rng_states = {
            name: list(_jsonable_state(rng.getstate()))
            for name, rng in self._rngs.items()
        }
        snapshot = Snapshot(
            seq=self._seq,
            taken_at_ns=self.sim.now,
            workload=dict(self.workload),
            jobs=jobs,
            fabric=fabric,
            rng=rng_states,
            checkpoint_cost_ns=self.policy.checkpoint_cost_ns,
        )
        self._seq += 1
        return snapshot

    def checkpoint(self) -> Generator:
        """Capture + charge the quiesce cost + persist (sim process)."""
        started = self.sim.now
        snapshot = self.capture()
        if self.policy.checkpoint_cost_ns > 0:
            yield Timeout(self.policy.checkpoint_cost_ns)
        self.measured_cost_ns = self.sim.now - started
        self.snapshots.append(snapshot)
        keep = self.policy.max_snapshots
        if keep > 0 and len(self.snapshots) > keep:
            del self.snapshots[: len(self.snapshots) - keep]
        if self.store is not None:
            self.store.save(snapshot)
            self.store.prune(keep)
        if self.telemetry is not None:
            self.telemetry.event(
                "checkpoint.snapshot",
                f"{self.engine.node.name}.checkpoint",
                seq=snapshot.seq,
                tasks_completed=snapshot.tasks_completed,
                cost_ns=self.measured_cost_ns,
            )
        return snapshot

    def latest(self) -> Optional[Snapshot]:
        return self.snapshots[-1] if self.snapshots else None

    def latest_before(self, at_ns: float) -> Optional[Snapshot]:
        """The newest snapshot fully taken before ``at_ns`` (what a
        failure at that time could actually restore from)."""
        usable = [s for s in self.snapshots if s.taken_at_ns <= at_ns]
        return usable[-1] if usable else None


def _jsonable_state(state) -> List[Any]:
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]
