"""The Execution Engine: the mechanism layer of the runtime.

This is the top box of Fig. 5: it owns the work-distribution step, the
per-Worker schedulers, the Execution History, the prediction models and
the reconfiguration daemon.  Since the multi-tenant split it is
*job-agnostic*: every task carries a job id, device/placement decisions
are delegated to the per-job :class:`~repro.core.runtime.policy.
SchedulingPolicy` through the :class:`~repro.core.runtime.jobs.
JobRegistry`, and streams of jobs are admitted by the
:class:`~repro.core.runtime.jobs.JobManager` session layer.
``run_graph`` remains as the thin single-job wrapper (bit-identical to
the pre-multi-tenant runtime).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.taskgraph import Task, TaskGraph
from repro.core.compute_node import ComputeNode
from repro.core.runtime.daemon import ReconfigurationDaemon
from repro.core.runtime.distribution import WorkDistributor
from repro.core.runtime.faults import FaultTolerancePolicy, TaskSupervisor
from repro.core.runtime.history import ExecutionHistory
from repro.core.runtime.jobs import JobManager, JobRegistry
from repro.core.runtime.lazy import LazyStatusTracker, LocalWorkQueue
from repro.core.runtime.models import DeviceSelector
from repro.core.runtime.policy import (
    DistributionPolicy,
    GreedyHardwarePolicy,
    PolicyConfig,
    SchedulingPolicy,
)
from repro.core.runtime.report import RunReport
from repro.core.runtime.scheduler import WorkerScheduler, WorkItem
from repro.core.unilogic import UnilogicDomain
from repro.core.worker import FunctionRegistry
from repro.fabric.module_library import ModuleLibrary
from repro.sim import Process, spawn

__all__ = ["ExecutionEngine", "RunReport", "DistributionPolicy"]


class ExecutionEngine:
    """Wires queues, schedulers, tracker, distributor and daemon together."""

    def __init__(
        self,
        node: ComputeNode,
        registry: FunctionRegistry,
        library: Optional[ModuleLibrary] = None,
        use_daemon: bool = True,
        daemon_period_ns: float = 500_000.0,
        lazy_status: bool = True,
        status_refresh_ns: float = 10_000.0,
        selector: Optional[DeviceSelector] = None,
        retrain_every: int = 0,
        allow_hardware: bool = True,
        energy_weight: float = 0.0,
        distribution_policy: PolicyConfig = PolicyConfig(),
        policy: Optional[SchedulingPolicy] = None,
        tracer=None,
        telemetry=None,
        fault_tolerance: Optional[FaultTolerancePolicy] = None,
    ) -> None:
        self.node = node
        self.registry = registry
        self.library = library if library is not None else ModuleLibrary()
        self.history = ExecutionHistory()
        self.unilogic = UnilogicDomain(node)
        self.selector = selector
        self.retrain_every = retrain_every
        self.telemetry = telemetry if telemetry is not None and telemetry.enabled else None
        if self.telemetry is not None and tracer is None:
            tracer = self.telemetry.tracer

        # the policy layer: one shared config, a default policy, and the
        # per-job registry the mechanism reads decisions through
        self.policy_config = distribution_policy
        self.default_policy = (
            policy if policy is not None else GreedyHardwarePolicy(distribution_policy)
        )
        self.jobs = JobRegistry(self.default_policy)

        self.queues: List[LocalWorkQueue] = [
            LocalWorkQueue(node.sim, w.worker_id) for w in node.workers
        ]
        self.tracker = LazyStatusTracker(
            node.sim, self.queues, status_refresh_ns, lazy=lazy_status
        )
        self.distributor = WorkDistributor(
            node, self.queues, self.tracker, distribution_policy, jobs=self.jobs
        )
        self.distributor.unilogic = self.unilogic
        self.schedulers: List[WorkerScheduler] = [
            WorkerScheduler(
                node,
                w.worker_id,
                self.queues[w.worker_id],
                self.unilogic,
                registry,
                self.history,
                selector=selector,
                energy_weight=energy_weight,
                allow_hardware=allow_hardware,
                tracer=tracer,
                telemetry=self.telemetry,
                jobs=self.jobs,
            )
            for w in node.workers
        ]
        self.tracer = tracer
        self.daemon: Optional[ReconfigurationDaemon] = None
        if use_daemon:
            self.daemon = ReconfigurationDaemon(
                node,
                self.unilogic,
                self.library,
                registry,
                self.history,
                period_ns=daemon_period_ns,
                telemetry=self.telemetry,
            )
        # self-healing runtime (None = bit-identical legacy behaviour)
        self.supervisor: Optional[TaskSupervisor] = None
        self.fault_injector = None
        self.recovery = None
        if fault_tolerance is not None:
            self.supervisor = TaskSupervisor(
                self, fault_tolerance, telemetry=self.telemetry
            )
            for s in self.schedulers:
                s.supervisor = self.supervisor
            if fault_tolerance.recover_fabric:
                from repro.core.resilience import FaultInjector, RecoveryManager

                self.fault_injector = FaultInjector(node)
                self.recovery = RecoveryManager(
                    node,
                    self.unilogic,
                    self.library,
                    self.fault_injector,
                    check_period_ns=fault_tolerance.heartbeat_period_ns,
                    telemetry=self.telemetry,
                )
        if self.telemetry is not None:
            from repro.telemetry.wiring import attach_engine

            attach_engine(self.telemetry, self, prefix=f"{node.name}.runtime")

        self._scheduler_procs: List[Process] = []
        self._daemon_proc: Optional[Process] = None
        self._supervisor_proc: Optional[Process] = None
        self._recovery_proc: Optional[Process] = None
        self._started = False

    # ------------------------------------------------------------------
    # composable lifecycle (used directly by the cluster engine)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the scheduler loops (and daemon).  Idempotent."""
        if self._started:
            return
        sim = self.node.sim
        self._scheduler_procs = [
            spawn(sim, s.run(), name=f"{self.node.name}.sched{i}")
            for i, s in enumerate(self.schedulers)
        ]
        if self.daemon is not None:
            self._daemon_proc = spawn(sim, self.daemon.run(), name=f"{self.node.name}.daemon")
        if self.supervisor is not None:
            self._supervisor_proc = spawn(
                sim, self.supervisor.run(), name=f"{self.node.name}.supervisor"
            )
        if self.recovery is not None:
            self._recovery_proc = spawn(
                sim, self.recovery.run(), name=f"{self.node.name}.recovery"
            )
        self._started = True

    def submit_task(self, task: Task, job_id: int = 0) -> WorkItem:
        """Place one task (via its job's policy) onto a Worker's queue."""
        worker = self.distributor.choose_worker(task, observer=0, job=job_id)
        return self.schedulers[worker].submit(task, job_id=job_id)

    def submit_layer(
        self, tasks: Sequence[Task], job_id: int = 0
    ) -> List[WorkItem]:
        """Distribute one dependence layer onto the workers' queues."""
        return [self.submit_task(task, job_id=job_id) for task in tasks]

    def stop(self) -> None:
        """Shut the scheduler loops, the daemon and the FT machinery down."""
        if not self._started:
            return
        for s in self.schedulers:
            s.shutdown()
        if self.daemon is not None:
            self.daemon.stop()
        if self._daemon_proc is not None and self._daemon_proc.alive:
            self._daemon_proc.interrupt("run complete")
        if self.supervisor is not None:
            self.supervisor.stop()
        if self._supervisor_proc is not None and self._supervisor_proc.alive:
            self._supervisor_proc.interrupt("run complete")
        if self.recovery is not None:
            self.recovery.stop()
        if self._recovery_proc is not None and self._recovery_proc.alive:
            self._recovery_proc.interrupt("run complete")
        self._started = False

    # ------------------------------------------------------------------
    # fault hooks (driven by repro.chaos or directly by tests)
    # ------------------------------------------------------------------
    def crash_worker(self, worker_id: int, permanent: bool = True) -> None:
        """Crash-stop one Worker's runtime *now*.  ``permanent`` crashes
        also break its fabric regions so the RecoveryManager reloads the
        lost modules onto survivors; transient crashes leave the fabric
        intact (UNILOGIC keeps serving its blocks domain-wide)."""
        scheduler = self.schedulers[worker_id]
        if scheduler.crashed:
            return
        scheduler.fail()
        if self.supervisor is not None:
            self.supervisor.notify_crash(worker_id, permanent)
        if permanent and self.fault_injector is not None:
            self.fault_injector.inject_worker_fault(worker_id)
        if self.telemetry is not None:
            self.telemetry.event(
                "runtime.worker_crash",
                f"{self.node.name}.runtime",
                worker=worker_id,
                permanent=permanent,
            )

    def recover_worker(self, worker_id: int) -> None:
        """Bring a transiently-failed Worker back: clear the crash flag,
        rejoin the placement pool, respawn the scheduler loop if it died."""
        scheduler = self.schedulers[worker_id]
        if not scheduler.crashed:
            return
        scheduler.restore()
        self.distributor.mark_up(worker_id)
        if self.supervisor is not None:
            self.supervisor.notify_recover(worker_id)
        # re-queue anything stranded after the failure was already
        # detected (a placement that landed on the dark Worker and woke
        # its dying loop): drain_pending() only runs at detection time,
        # so without this the item's done signal never fires
        for item in scheduler.stranded:
            if not item.done.triggered and not item.redispatched:
                scheduler.resubmit(item)
        scheduler.stranded = []
        if self._started:
            proc = self._scheduler_procs[worker_id]
            if not proc.alive:
                self._scheduler_procs[worker_id] = spawn(
                    self.node.sim,
                    scheduler.run(),
                    name=f"{self.node.name}.sched{worker_id}",
                )
        if self.telemetry is not None:
            self.telemetry.event(
                "runtime.worker_rejoin",
                f"{self.node.name}.runtime",
                worker=worker_id,
            )

    # ------------------------------------------------------------------
    def run_graph(self, graph: TaskGraph, dataflow: bool = False) -> RunReport:
        """Run ``graph`` to completion; returns the :class:`RunReport`.

        A thin single-job wrapper over the :class:`~repro.core.runtime.
        jobs.JobManager` session layer, with fair-share admission
        disabled so the event sequence is bit-identical to the
        pre-multi-tenant runtime.  ``dataflow=True`` replaces the
        layer-barrier driver with dependence-triggered dispatch (usually
        a makespan win on DAGs with uneven layers).
        """
        sim = self.node.sim
        start = sim.now
        self.start()
        if self.telemetry is not None:
            self.telemetry.event(
                "runtime.run_start",
                f"{self.node.name}.runtime",
                tasks=len(graph),
                dataflow=dataflow,
            )
        manager = JobManager(self, fair_share=False)
        handle = manager.submit_job(graph, dataflow=dataflow)
        if self.telemetry is not None:

            def run_end() -> None:
                self.telemetry.event(
                    "runtime.run_end",
                    f"{self.node.name}.runtime",
                    tasks=len(graph),
                    makespan_ns=sim.now - start,
                )

            handle.on_done = run_end
        sim.run()
        end = handle.finished_at if handle.finished_at is not None else sim.now
        return self._report(graph, end - start)

    # ------------------------------------------------------------------
    def _report(self, graph: TaskGraph, makespan: float) -> RunReport:
        sw = sum(s.sw_chosen for s in self.schedulers)
        hw = sum(s.hw_chosen for s in self.schedulers)
        availability: Dict[str, object] = {}
        if self.supervisor is not None:
            sup = self.supervisor
            fabric_faults = (
                len(self.fault_injector.records)
                if self.fault_injector is not None
                else 0
            )
            availability = dict(
                faults_injected=len(sup.failures) + fabric_faults,
                worker_failures=len(sup.failures),
                tasks_retried=sup.tasks_retried,
                tasks_unrecovered=len(sup.unrecovered),
                mean_detection_ns=sup.mean_detection_ns(),
                mean_recovery_ns=sup.mean_recovery_ns(),
                work_lost_ns=sup.work_lost_ns,
                fabric_recoveries=(
                    self.recovery.recoveries if self.recovery is not None else 0
                ),
                fabric_recovery_failures=(
                    self.recovery.failed_recoveries
                    if self.recovery is not None
                    else 0
                ),
            )
        return RunReport(
            makespan_ns=makespan,
            tasks=len(graph),
            sw_calls=sw,
            hw_calls=hw,
            energy_pj=self.node.ledger.total_pj(),
            energy_breakdown=self.node.ledger.breakdown(depth=2),
            reconfigurations=sum(
                w.reconfig.reconfigurations for w in self.node.workers
            ),
            status_messages=self.tracker.status_messages,
            placement_locality=self.distributor.locality_fraction(),
            device_mix={"sw": sw, "hw": hw},
            **availability,
        )
