"""The scheduling-policy layer: pluggable device + placement decisions.

The paper's Fig. 5 separates the *mechanism* (queues, per-Worker
schedulers, the reconfiguration daemon) from the *policy* (which device
runs a call, which Worker's queue a task joins).  Historically both
decisions were baked into ``WorkerScheduler._decide_device`` and
``WorkDistributor``; this module extracts them behind one protocol so a
multi-tenant machine can run jobs side by side, each under its own
policy.

A :class:`SchedulingPolicy` answers two questions:

- :meth:`~SchedulingPolicy.decide_device` -- SW or HW for one task, on
  the Worker whose scheduler popped it (the scheduler object is the
  decision context: it carries the node, the UNILOGIC domain, the
  registry, the Execution History and the trained selector);
- :meth:`~SchedulingPolicy.choose_worker` -- which Worker's queue a task
  joins (the distributor object is the context: node, queues, lazy
  tracker, and -- when the engine wired it -- the UNILOGIC domain).

All numeric knobs live in one shared :class:`PolicyConfig`; the
constants that used to be duplicated between ``scheduler.py`` (inline
``hops * 10.0 + bytes / 4.0``) and ``distribution.py`` now have exactly
one home.  History-driven policies read the Execution History through
its query API rather than keeping private state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Type

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.apps.taskgraph import Task
    from repro.core.runtime.distribution import WorkDistributor
    from repro.core.runtime.scheduler import WorkerScheduler


@dataclass(frozen=True)
class PolicyConfig:
    """Every numeric knob a scheduling policy reads, in one place.

    Placement terms (lower score wins):

    - ``transfer_penalty_ns_per_byte_hop`` prices moving the task's data,
    - ``load_penalty_ns`` prices one queued task ahead of us,
    - ``data_affinity_only`` is the ablation that ignores load entirely.

    Device-decision terms (the remote ACE-lite penalty the scheduler
    used to hard-code):

    - ``remote_hop_penalty_ns`` per NoC hop of control distance,
    - ``remote_noc_bytes_per_ns`` rough NoC serialization bandwidth.

    Energy-aware weighting:

    - ``energy_ns_per_pj`` converts picojoules into equivalent
      nanoseconds when a policy trades latency against energy.
    """

    transfer_penalty_ns_per_byte_hop: float = 0.1
    load_penalty_ns: float = 20_000.0
    data_affinity_only: bool = False  # ablation: ignore load entirely
    remote_hop_penalty_ns: float = 10.0
    remote_noc_bytes_per_ns: float = 4.0
    energy_ns_per_pj: float = 1e-3

    def __post_init__(self) -> None:
        if self.remote_noc_bytes_per_ns <= 0:
            raise ValueError("remote_noc_bytes_per_ns must be positive")
        if self.energy_ns_per_pj < 0:
            raise ValueError("energy_ns_per_pj must be non-negative")


#: Backwards-compatible name: the old distribution-only policy dataclass
#: grew into the shared policy configuration.
DistributionPolicy = PolicyConfig


class SchedulingPolicy:
    """Base policy: greedy-hardware behaviour, overridable per decision.

    Subclasses override :meth:`decide_device` and/or
    :meth:`choose_worker`; the base implementations reproduce the
    historical monolithic behaviour bit-for-bit, so the default policy
    is also the compatibility policy.
    """

    #: Registry key and report label.
    name: str = "greedy-hw"

    def __init__(self, config: PolicyConfig = PolicyConfig()) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # device decision (context: the per-Worker scheduler)
    # ------------------------------------------------------------------
    def decide_device(self, scheduler: "WorkerScheduler", task: "Task") -> str:
        """SW vs. HW for ``task`` on ``scheduler``'s Worker.

        1. no hosting region in the domain (or hardware disallowed):
           software;
        2. a trained device selector with confident models: follow it;
        3. otherwise compare analytic estimates: software cost model vs.
           best hosting region's latency plus the remote-invocation
           penalty priced by :class:`PolicyConfig`.
        """
        function = task.function
        hw_hosted = (
            scheduler.allow_hardware
            and scheduler.unilogic.nearest_region(function, task.data_worker)
            is not None
        )
        if not hw_hosted:
            return "sw"
        if scheduler.selector is not None:
            choice = scheduler.selector.choose_device(
                function, task.items, scheduler.energy_weight
            )
            if choice is not None:
                return choice
        # analytic fallback
        kernel = scheduler.registry.kernel(function)
        sw_ns = scheduler.worker.software_latency_ns(kernel, task.items)
        host_worker, region = scheduler.unilogic.nearest_region(
            function, task.data_worker
        )
        hw_ns = region.module.latency_ns(task.items)
        if host_worker != task.data_worker:
            # remote ACE-lite penalty: data crosses the NoC uncached
            bytes_total = task.input_bytes + task.output_bytes
            hops = scheduler.node.hop_distance(task.data_worker, host_worker)
            hw_ns += (
                hops * self.config.remote_hop_penalty_ns
                + bytes_total / self.config.remote_noc_bytes_per_ns
            )
        return "hw" if hw_ns < sw_ns else "sw"

    # ------------------------------------------------------------------
    # placement decision (context: the work distributor)
    # ------------------------------------------------------------------
    def placement_score(
        self,
        distributor: "WorkDistributor",
        task: "Task",
        worker: int,
        observer: int,
    ) -> float:
        """Lower wins: data-affinity transfer cost plus believed load."""
        data_bytes = task.input_bytes + task.output_bytes
        hops = distributor.node.hop_distance(task.data_worker, worker)
        transfer = hops * data_bytes * self.config.transfer_penalty_ns_per_byte_hop
        if self.config.data_affinity_only:
            return transfer
        load = distributor.tracker.estimated_load(observer, worker)
        return transfer + load * self.config.load_penalty_ns

    def choose_worker(
        self, distributor: "WorkDistributor", task: "Task", observer: int = 0
    ) -> int:
        """The alive Worker with the lowest placement score (ties to
        lowest id)."""
        return min(
            distributor.alive_workers(),
            key=lambda w: (self.placement_score(distributor, task, w, observer), w),
        )

    # ------------------------------------------------------------------
    # OpenCL routing decision (context: a Worker + kernel handle)
    # ------------------------------------------------------------------
    def route_ndrange(self, worker, kernel, global_size: int) -> bool:
        """CPU vs. FPGA for one OpenCL ND-range on ``worker`` (the
        distributed command queue's routing hook; ``True`` = FPGA).

        Greedy default: FPGA whenever a fitting variant's latency --
        including a reconfiguration if nothing hosts the kernel yet --
        beats the software estimate.
        """
        program = kernel.program
        function = kernel.function
        if not program.is_accelerated(function):
            return False
        # only consider variants that actually fit this worker's regions
        capacity = max(
            (r.capacity for r in worker.fabric.regions),
            key=lambda c: c.area_units(),
        )
        module = program.library.best_variant(
            function, capacity=capacity, items_hint=global_size
        )
        if module is None:
            return False
        hw_ns = module.latency_ns(global_size)
        if worker.hosted_region(function) is None:
            hw_ns += worker.reconfig.load_cost_ns(module)
        sw_ns = worker.software_latency_ns(kernel.kernel_ir, global_size)
        return hw_ns < sw_ns


class GreedyHardwarePolicy(SchedulingPolicy):
    """The default policy: hardware whenever it is predicted faster,
    placement by data affinity traded against believed load.  Identical
    to the pre-policy-layer monolithic behaviour."""

    name = "greedy-hw"


class EnergyAwarePolicy(SchedulingPolicy):
    """Minimize latency plus energy (weighted by
    ``config.energy_ns_per_pj``), preferring *measured* costs from the
    Execution History over analytic estimates -- the "history file"
    drives the decision, not ad-hoc per-policy state."""

    name = "energy"

    def decide_device(self, scheduler: "WorkerScheduler", task: "Task") -> str:
        function = task.function
        found = (
            scheduler.unilogic.nearest_region(function, task.data_worker)
            if scheduler.allow_hardware
            else None
        )
        if found is None:
            return "sw"
        host_worker, region = found
        weight = self.config.energy_ns_per_pj
        history = scheduler.history

        def measured_cost(device: str) -> Optional[float]:
            latency = history.mean_latency(function, device)
            energy = history.mean_energy(function, device)
            if latency is None or energy is None:
                return None
            return latency + weight * energy

        sw_cost = measured_cost("sw")
        hw_cost = measured_cost("hw")
        if sw_cost is None:
            kernel = scheduler.registry.kernel(function)
            sw_cost = scheduler.worker.software_latency_ns(
                kernel, task.items
            ) + weight * scheduler.worker.params.software.energy_pj(kernel, task.items)
        if hw_cost is None:
            hw_ns = region.module.latency_ns(task.items)
            if host_worker != task.data_worker:
                bytes_total = task.input_bytes + task.output_bytes
                hops = scheduler.node.hop_distance(task.data_worker, host_worker)
                hw_ns += (
                    hops * self.config.remote_hop_penalty_ns
                    + bytes_total / self.config.remote_noc_bytes_per_ns
                )
            hw_cost = hw_ns + weight * region.module.energy_pj(task.items)
        return "hw" if hw_cost < sw_cost else "sw"

    def choose_worker(
        self, distributor: "WorkDistributor", task: "Task", observer: int = 0
    ) -> int:
        """Prefer the Worker hosting the task's function nearest its
        data (hardware runs are the energy win); otherwise fall back to
        the affinity/load score."""
        unilogic = getattr(distributor, "unilogic", None)
        if unilogic is not None:
            found = unilogic.nearest_region(task.function, task.data_worker)
            if found is not None and found[0] in distributor.alive_workers():
                return found[0]
        return super().choose_worker(distributor, task, observer)

    def route_ndrange(self, worker, kernel, global_size: int) -> bool:
        """Latency-plus-energy compare for the ND-range route."""
        program = kernel.program
        function = kernel.function
        if not program.is_accelerated(function):
            return False
        capacity = max(
            (r.capacity for r in worker.fabric.regions),
            key=lambda c: c.area_units(),
        )
        module = program.library.best_variant(
            function, capacity=capacity, items_hint=global_size
        )
        if module is None:
            return False
        weight = self.config.energy_ns_per_pj
        hw_cost = module.latency_ns(global_size) + weight * module.energy_pj(
            global_size
        )
        if worker.hosted_region(function) is None:
            hw_cost += worker.reconfig.load_cost_ns(module)
        sw_cost = worker.software_latency_ns(
            kernel.kernel_ir, global_size
        ) + weight * worker.params.software.energy_pj(kernel.kernel_ir, global_size)
        return hw_cost < sw_cost


class LocalityPolicy(SchedulingPolicy):
    """NUMA-style locality first: run every task where its working set
    lives, and only use hardware when the hosting region is co-located
    with the data (no ACE-lite traffic crosses the NoC)."""

    name = "locality"

    def decide_device(self, scheduler: "WorkerScheduler", task: "Task") -> str:
        if not scheduler.allow_hardware:
            return "sw"
        found = scheduler.unilogic.nearest_region(task.function, task.data_worker)
        if found is None or found[0] != task.data_worker:
            return "sw"
        host_worker, region = found
        kernel = scheduler.registry.kernel(task.function)
        sw_ns = scheduler.worker.software_latency_ns(kernel, task.items)
        return "hw" if region.module.latency_ns(task.items) < sw_ns else "sw"

    def choose_worker(
        self, distributor: "WorkDistributor", task: "Task", observer: int = 0
    ) -> int:
        alive = distributor.alive_workers()
        if task.data_worker in alive:
            return task.data_worker
        # data home is down: nearest surviving Worker (ties to lowest id)
        return min(
            alive,
            key=lambda w: (
                distributor.node.hop_distance(task.data_worker, w),
                w,
            ),
        )

    def route_ndrange(self, worker, kernel, global_size: int) -> bool:
        """FPGA only when the kernel is already resident on this Worker:
        locality never pays for a reconfiguration."""
        if worker.hosted_region(kernel.function) is None:
            return False
        return super().route_ndrange(worker, kernel, global_size)


#: The built-in policies ``JobManager.submit_job(policy=...)`` accepts
#: by name.
POLICIES: Dict[str, Type[SchedulingPolicy]] = {
    GreedyHardwarePolicy.name: GreedyHardwarePolicy,
    EnergyAwarePolicy.name: EnergyAwarePolicy,
    LocalityPolicy.name: LocalityPolicy,
}


def make_policy(
    name: str, config: PolicyConfig = PolicyConfig()
) -> SchedulingPolicy:
    """Instantiate one built-in policy by registry name."""
    if name not in POLICIES:
        known = ", ".join(sorted(POLICIES))
        raise KeyError(f"unknown policy {name!r}; choose from: {known}")
    return POLICIES[name](config)
