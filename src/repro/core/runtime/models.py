"""Input-dependent execution-time and energy prediction models.

Section 4.2: "We will specifically develop input-dependent models of
execution time and energy to select the best device to execute a
function.  The models will attempt to capture the correlation between
input/output size, input/output data shape ..., and data access pattern
in memory (model inputs) and execution time and power consumption (model
outputs) ... We intend to use an array of regression, SVM and PCA
techniques for this purpose."

Implemented here with numpy: ridge-regularized linear regression on
engineered input features, a PCA+ridge pipeline for correlated feature
sets, and a kNN fallback for small-sample regimes.  (SVM regression is
substituted by ridge -- for the monotone size->time relations these
workloads exhibit, both fit the same function class; DESIGN.md records
the substitution.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.runtime.history import ExecutionHistory


def kernel_features(items: int, input_bytes: int = 0, output_bytes: int = 0) -> np.ndarray:
    """The engineered feature vector: size, data volumes, and the
    log/linear-log terms that capture cache-regime transitions."""
    if items < 1:
        raise ValueError("items must be positive")
    n = float(items)
    total_bytes = float(input_bytes + output_bytes)
    return np.array([n, n * math.log(n + 1.0), total_bytes, math.log(n + 1.0)])


class LinearModel:
    """Ridge-regularized least squares: y ~ w . phi(x) + b."""

    def __init__(self, alpha: float = 1e-6) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self._w: Optional[np.ndarray] = None

    @property
    def trained(self) -> bool:
        return self._w is not None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearModel":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes {x.shape}, {y.shape}")
        if x.shape[0] < 2:
            raise ValueError("need at least two samples")
        xb = np.hstack([x, np.ones((x.shape[0], 1))])
        a = xb.T @ xb + self.alpha * np.eye(xb.shape[1])
        self._w = np.linalg.solve(a, xb.T @ y)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._w is None:
            raise RuntimeError("fit() before predict()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        xb = np.hstack([x, np.ones((x.shape[0], 1))])
        return xb @ self._w

    def predict_one(self, x: np.ndarray) -> float:
        return float(self.predict(x)[0])


class PcaRegressor:
    """Standardize -> PCA(k) -> ridge.  Robust to correlated features."""

    def __init__(self, components: int = 2, alpha: float = 1e-6) -> None:
        if components < 1:
            raise ValueError("need at least one component")
        self.components = components
        self.alpha = alpha
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None
        self._basis: Optional[np.ndarray] = None
        self._ridge = LinearModel(alpha)

    @property
    def trained(self) -> bool:
        return self._basis is not None and self._ridge.trained

    def fit(self, x: np.ndarray, y: np.ndarray) -> "PcaRegressor":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or x.shape[0] != y.shape[0] or x.shape[0] < 2:
            raise ValueError(f"bad shapes {x.shape}, {y.shape}")
        self._mean = x.mean(axis=0)
        scale = x.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        z = (x - self._mean) / self._scale
        k = min(self.components, x.shape[1], x.shape[0])
        _, _, vt = np.linalg.svd(z, full_matrices=False)
        self._basis = vt[:k].T
        self._ridge.fit(z @ self._basis, y)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self.trained:
            raise RuntimeError("fit() before predict()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        z = (x - self._mean) / self._scale
        return self._ridge.predict(z @ self._basis)

    def predict_one(self, x: np.ndarray) -> float:
        return float(self.predict(x)[0])


class KnnPredictor:
    """Distance-weighted k-nearest-neighbour regression (small-sample
    fallback while the parametric models are still cold)."""

    def __init__(self, k: int = 3) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    @property
    def trained(self) -> bool:
        return self._x is not None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KnnPredictor":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or x.shape[0] != y.shape[0] or x.shape[0] < 1:
            raise ValueError(f"bad shapes {x.shape}, {y.shape}")
        self._x, self._y = x, y
        return self

    def predict_one(self, x: np.ndarray) -> float:
        if self._x is None:
            raise RuntimeError("fit() before predict()")
        x = np.asarray(x, dtype=float)
        d = np.linalg.norm(self._x - x, axis=1)
        k = min(self.k, len(d))
        nearest = np.argsort(d)[:k]
        weights = 1.0 / (d[nearest] + 1e-9)
        return float((self._y[nearest] * weights).sum() / weights.sum())


class _LogModel:
    """Fits log(y): right for the multiplicative noise of real timings
    (cache effects, contention scale with the value, not add to it)."""

    def __init__(self, base) -> None:
        self._base = base

    def fit(self, x: np.ndarray, y: np.ndarray) -> "_LogModel":
        self._base.fit(x, np.log(np.maximum(y, 1e-9)))
        return self

    def predict_one(self, x: np.ndarray) -> float:
        return float(np.exp(self._base.predict_one(x)))


@dataclass
class _FunctionModels:
    latency: Dict[str, object]   # device -> model
    energy: Dict[str, object]
    samples: Dict[str, int]


class DeviceSelector:
    """Trains per-(function, device) models from the Execution History and
    answers the runtime's question: *where should this call run?*

    Below ``min_samples`` per device the selector abstains (returns
    ``None``) so the scheduler falls back to its analytic estimates --
    the 'training part' of the paper's three-phase plan.
    """

    def __init__(
        self, min_samples: int = 5, use_pca: bool = False, log_target: bool = True
    ) -> None:
        if min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        self.min_samples = min_samples
        self.use_pca = use_pca
        self.log_target = log_target
        self._models: Dict[str, _FunctionModels] = {}

    def _make_model(self):
        base = PcaRegressor(components=2) if self.use_pca else LinearModel()
        return _LogModel(base) if self.log_target else base

    # ------------------------------------------------------------------
    def train(self, history: ExecutionHistory) -> int:
        """(Re)fit every (function, device) model; returns models trained."""
        trained = 0
        self._models.clear()
        for function in history.functions():
            fm = _FunctionModels(latency={}, energy={}, samples={})
            for device in ("sw", "hw"):
                recs = history.records(function, device)
                fm.samples[device] = len(recs)
                if len(recs) < self.min_samples:
                    continue
                x = np.array([kernel_features(r.items) for r in recs])
                lat = np.array([r.latency_ns for r in recs])
                en = np.array([r.energy_pj for r in recs])
                fm.latency[device] = self._make_model().fit(x, lat)
                fm.energy[device] = self._make_model().fit(x, en)
                trained += 2
            self._models[function] = fm
        return trained

    def predict_latency(self, function: str, device: str, items: int) -> Optional[float]:
        fm = self._models.get(function)
        if fm is None or device not in fm.latency:
            return None
        value = fm.latency[device].predict_one(kernel_features(items))
        return max(0.0, value)

    def predict_energy(self, function: str, device: str, items: int) -> Optional[float]:
        fm = self._models.get(function)
        if fm is None or device not in fm.energy:
            return None
        return max(0.0, fm.energy[device].predict_one(kernel_features(items)))

    def choose_device(
        self, function: str, items: int, energy_weight: float = 0.0
    ) -> Optional[str]:
        """'sw' or 'hw' by predicted cost; ``None`` when under-trained.

        ``energy_weight`` in [0, 1] blends normalized energy into the
        score (0 = pure latency, 1 = pure energy).
        """
        if not 0.0 <= energy_weight <= 1.0:
            raise ValueError("energy_weight must be in [0, 1]")
        scores = {}
        for device in ("sw", "hw"):
            lat = self.predict_latency(function, device, items)
            if lat is None:
                continue
            score = lat
            if energy_weight > 0:
                en = self.predict_energy(function, device, items)
                if en is not None:
                    score = (1 - energy_weight) * lat + energy_weight * en
            scores[device] = score
        if len(scores) < 2:
            return None
        return min(scores, key=scores.get)

    def sample_counts(self, function: str) -> Dict[str, int]:
        fm = self._models.get(function)
        return dict(fm.samples) if fm else {"sw": 0, "hw": 0}
