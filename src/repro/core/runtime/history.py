"""The Execution History (the 'History file' of Fig. 5).

"A history of the function calls as well as their execution time is
stored in a History file (Execution History block).  The runtime
scheduler/daemon will read periodically the system status and the History
file in order to decide at runtime what functions should be loaded on the
reconfiguration block."
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.telemetry.quantiles import latency_summary, mean


@dataclass(frozen=True)
class ExecutionRecord:
    """One completed function call."""

    function: str
    device: str            # "sw" or "hw"
    worker: int
    items: int
    latency_ns: float
    energy_pj: float
    timestamp: float       # simulated time of completion
    job: int = 0           # owning tenant (0 = the implicit legacy job)

    def __post_init__(self) -> None:
        if self.device not in ("sw", "hw"):
            raise ValueError(f"device must be 'sw' or 'hw', got {self.device!r}")
        if self.items < 1 or self.latency_ns < 0 or self.energy_pj < 0:
            raise ValueError("invalid record fields")


class ExecutionHistory:
    """Append-only store of execution records with query helpers."""

    def __init__(self, capacity: Optional[int] = 100_000) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._records: List[ExecutionRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def append(self, record: ExecutionRecord) -> None:
        self._records.append(record)
        if self.capacity is not None and len(self._records) > self.capacity:
            del self._records[: len(self._records) - self.capacity]

    def record(self, **kwargs) -> ExecutionRecord:
        rec = ExecutionRecord(**kwargs)
        self.append(rec)
        return rec

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def records(
        self,
        function: Optional[str] = None,
        device: Optional[str] = None,
        since: Optional[float] = None,
        job: Optional[int] = None,
    ) -> List[ExecutionRecord]:
        out = self._records
        if function is not None:
            out = [r for r in out if r.function == function]
        if device is not None:
            out = [r for r in out if r.device == device]
        if since is not None:
            out = [r for r in out if r.timestamp >= since]
        if job is not None:
            out = [r for r in out if r.job == job]
        return list(out)

    def functions(self) -> List[str]:
        return sorted({r.function for r in self._records})

    def call_counts(self, since: Optional[float] = None) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for r in self.records(since=since):
            counts[r.function] = counts.get(r.function, 0) + 1
        return counts

    def mean_latency(
        self, function: str, device: Optional[str] = None
    ) -> Optional[float]:
        recs = self.records(function, device)
        if not recs:
            return None
        return mean([r.latency_ns for r in recs])

    def mean_energy(
        self, function: str, device: Optional[str] = None
    ) -> Optional[float]:
        recs = self.records(function, device)
        if not recs:
            return None
        return mean([r.energy_pj for r in recs])

    def latency_summary(
        self, function: Optional[str] = None, device: Optional[str] = None
    ) -> Dict[str, float]:
        """p50/p95/p99 latency block over matching records (shared math)."""
        recs = self._records
        if function is not None:
            recs = [r for r in recs if r.function == function]
        if device is not None:
            recs = [r for r in recs if r.device == device]
        return latency_summary([r.latency_ns for r in recs])

    def call_counts_by_job(self, since: Optional[float] = None) -> Dict[int, int]:
        """Calls per tenant -- the per-job utilization view."""
        counts: Dict[int, int] = {}
        for r in self.records(since=since):
            counts[r.job] = counts.get(r.job, 0) + 1
        return counts

    def total_time_by_function(self, since: Optional[float] = None) -> Dict[str, float]:
        """Aggregate busy time per function -- the daemon's hotness metric."""
        out: Dict[str, float] = {}
        for r in self.records(since=since):
            out[r.function] = out.get(r.function, 0.0) + r.latency_ns
        return out

    # ------------------------------------------------------------------
    # persistence (the literal History *file*)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        payload = [asdict(r) for r in self._records]
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path, capacity: Optional[int] = 100_000) -> "ExecutionHistory":
        payload = json.loads(Path(path).read_text())
        hist = cls(capacity)
        for entry in payload:
            hist.append(ExecutionRecord(**entry))
        return hist
