"""The per-Worker scheduler.

"We will implement one scheduler per worker, which will manage the local
reconfigurable blocks and the execution of the accelerated functions."

Each :class:`WorkerScheduler` drains its local work queue.  For every
task it makes the SW/HW decision (Fig. 5's Execution Engine box):

1. if the trained :class:`~repro.core.runtime.models.DeviceSelector` has
   confident models for both devices, follow its choice;
2. otherwise compare analytic estimates: the software cost model vs. the
   best loaded module's latency (plus remote-invocation penalty);
3. a hardware choice is only honoured when some region in the UNILOGIC
   domain actually hosts the function -- loading new modules is the
   reconfiguration daemon's job, not the scheduler's.

Every completed call is appended to the Execution History.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.apps.taskgraph import Task
from repro.core.compute_node import ComputeNode
from repro.core.runtime.history import ExecutionHistory
from repro.core.runtime.lazy import LocalWorkQueue
from repro.core.runtime.models import DeviceSelector
from repro.core.unilogic import UnilogicDomain
from repro.core.worker import FunctionRegistry
from repro.interconnect.message import TransactionType
from repro.sim import Signal


@dataclass
class WorkItem:
    """A task plus its completion signal (the engine joins on it)."""

    task: Task
    done: Signal
    device_used: Optional[str] = None
    latency_ns: float = 0.0


_SHUTDOWN = object()


class WorkerScheduler:
    """Drains one Worker's queue, deciding SW vs. HW per task."""

    def __init__(
        self,
        node: ComputeNode,
        worker_id: int,
        queue: LocalWorkQueue,
        unilogic: UnilogicDomain,
        registry: FunctionRegistry,
        history: ExecutionHistory,
        selector: Optional[DeviceSelector] = None,
        energy_weight: float = 0.0,
        allow_hardware: bool = True,
        tracer=None,
        telemetry=None,
    ) -> None:
        self.node = node
        self.worker_id = worker_id
        self.worker = node.worker(worker_id)
        self.queue = queue
        self.unilogic = unilogic
        self.registry = registry
        self.history = history
        self.selector = selector
        self.energy_weight = energy_weight
        self.allow_hardware = allow_hardware
        self.telemetry = telemetry
        if tracer is None and telemetry is not None and telemetry.enabled:
            tracer = telemetry.tracer
        self.tracer = tracer
        self.tasks_done = 0
        self.hw_chosen = 0
        self.sw_chosen = 0

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        self.queue.store.put(_SHUTDOWN)

    def submit(self, task: Task) -> WorkItem:
        item = WorkItem(task=task, done=Signal(self.node.sim))
        self.queue.push(item)  # type: ignore[arg-type]
        return item

    # ------------------------------------------------------------------
    def _decide_device(self, task: Task) -> str:
        function = task.function
        hw_hosted = (
            self.allow_hardware
            and self.unilogic.nearest_region(function, task.data_worker) is not None
        )
        if not hw_hosted:
            return "sw"
        if self.selector is not None:
            choice = self.selector.choose_device(
                function, task.items, self.energy_weight
            )
            if choice is not None:
                return choice
        # analytic fallback
        kernel = self.registry.kernel(function)
        sw_ns = self.worker.software_latency_ns(kernel, task.items)
        host_worker, region = self.unilogic.nearest_region(function, task.data_worker)
        hw_ns = region.module.latency_ns(task.items)
        if host_worker != task.data_worker:
            # remote ACE-lite penalty: data crosses the NoC uncached
            bytes_total = task.input_bytes + task.output_bytes
            hops = self.node.hop_distance(task.data_worker, host_worker)
            hw_ns += hops * 10.0 + bytes_total / 4.0  # rough NoC serialization
        return "hw" if hw_ns < sw_ns else "sw"

    def _execute(self, item: WorkItem) -> Generator:
        task = item.task
        kernel = self.registry.kernel(task.function)
        device = self._decide_device(task)
        if self.telemetry is not None:
            self.telemetry.event(
                "scheduler.decision",
                self.worker.name,
                task=task.task_id,
                function=task.function,
                device=device,
                items=task.items,
                queue_depth=self.queue.depth,
            )
        start = self.node.sim.now
        if device == "hw":
            self.hw_chosen += 1
            bpi = max(1, int(kernel.bytes_per_iteration()))
            yield from self.unilogic.invoke(
                task.function,
                caller_worker=self.worker_id,
                items=task.items,
                data_worker=task.data_worker,
                bytes_per_item=bpi,
            )
            host_worker, region = self.unilogic.nearest_region(
                task.function, task.data_worker
            ) or (self.worker_id, None)
            energy = (
                region.module.energy_pj(task.items) if region is not None else 0.0
            )
        else:
            self.sw_chosen += 1
            # software runs here; pull remote data through UNIMEM first
            if task.data_worker != self.worker_id:
                yield from self.node.transfer(
                    task.data_worker,
                    self.worker_id,
                    task.input_bytes,
                    TransactionType.DMA,
                )
            yield from self.worker.run_software(kernel, task.items)
            energy = self.worker.params.software.energy_pj(kernel, task.items)

        latency = self.node.sim.now - start
        item.device_used = device
        item.latency_ns = latency
        self.history.record(
            function=task.function,
            device=device,
            worker=self.worker_id,
            items=task.items,
            latency_ns=latency,
            energy_pj=energy,
            timestamp=self.node.sim.now,
        )

    # ------------------------------------------------------------------
    def run(self) -> Generator:
        """The scheduler's main loop (spawn as a simulation process)."""
        lane = self.worker.name
        while True:
            item = yield self.queue.pop()
            if item is _SHUTDOWN:
                return self.tasks_done
            span_name = None
            if self.tracer is not None:
                span_name = f"{item.task.function}#{item.task.task_id}"
                self.tracer.begin(lane, span_name)
            yield from self._execute(item)
            if self.tracer is not None and span_name is not None:
                self.tracer.end(lane, span_name)
            self.queue.mark_done()
            self.tasks_done += 1
            item.done.succeed(item)
