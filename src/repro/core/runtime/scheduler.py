"""The per-Worker scheduler.

"We will implement one scheduler per worker, which will manage the local
reconfigurable blocks and the execution of the accelerated functions."

Each :class:`WorkerScheduler` drains its local work queue.  It is pure
*mechanism*: every popped item carries a job id, and the SW/HW decision
for it is delegated to that job's
:class:`~repro.core.runtime.policy.SchedulingPolicy` (looked up through
the shared :class:`~repro.core.runtime.jobs.JobRegistry`).  The
scheduler object itself is the decision context -- it carries the node,
the Worker, the UNILOGIC domain, the registry, the Execution History and
the trained selector that policies read.

Every completed call is appended to the Execution History (tagged with
its job) and accounted against its tenant's :class:`~repro.core.runtime.
jobs.JobRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.apps.taskgraph import Task
from repro.core.compute_node import ComputeNode
from repro.core.runtime.history import ExecutionHistory
from repro.core.runtime.jobs import JobRegistry
from repro.core.runtime.lazy import LocalWorkQueue
from repro.core.runtime.models import DeviceSelector
from repro.core.runtime.policy import GreedyHardwarePolicy
from repro.core.unilogic import AcceleratorLost, UnilogicDomain
from repro.core.worker import FunctionRegistry
from repro.interconnect.message import TransactionType
from repro.sim import Signal


@dataclass
class WorkItem:
    """A task plus its completion signal (the engine joins on it).

    ``job_id`` tags which tenant the task belongs to (0 = the implicit
    legacy/default job) -- it sticks across supervisor retries, so
    recovery preserves job isolation.  The fault-tolerance fields
    (attempts, redispatched, failed) stay at their defaults on every
    healthy run; ``done`` fires exactly once even when a retry races the
    original execution (first completion wins).
    """

    task: Task
    done: Signal
    job_id: int = 0
    device_used: Optional[str] = None
    latency_ns: float = 0.0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    attempts: int = 0               # retries consumed (0 = first dispatch)
    redispatched: bool = False      # claimed by the supervisor for retry
    failed: bool = False            # gave up: retry budget exhausted
    fell_back: bool = False         # accelerator died mid-call, re-ran in SW


_SHUTDOWN = object()


class WorkerScheduler:
    """Drains one Worker's queue, deciding SW vs. HW per task."""

    def __init__(
        self,
        node: ComputeNode,
        worker_id: int,
        queue: LocalWorkQueue,
        unilogic: UnilogicDomain,
        registry: FunctionRegistry,
        history: ExecutionHistory,
        selector: Optional[DeviceSelector] = None,
        energy_weight: float = 0.0,
        allow_hardware: bool = True,
        tracer=None,
        telemetry=None,
        jobs: Optional[JobRegistry] = None,
    ) -> None:
        self.node = node
        self.worker_id = worker_id
        self.worker = node.worker(worker_id)
        self.queue = queue
        self.unilogic = unilogic
        self.registry = registry
        self.history = history
        self.selector = selector
        self.energy_weight = energy_weight
        self.allow_hardware = allow_hardware
        self.telemetry = telemetry
        if tracer is None and telemetry is not None and telemetry.enabled:
            tracer = telemetry.tracer
        self.tracer = tracer
        # standalone schedulers (tests) get a single-tenant registry
        self.jobs = jobs if jobs is not None else JobRegistry(GreedyHardwarePolicy())
        self.tasks_done = 0
        self.hw_chosen = 0
        self.sw_chosen = 0
        self.hw_fallbacks = 0   # accelerator died mid-call, re-ran in SW
        # fault-tolerance state (inert unless the engine arms a supervisor)
        self.crashed = False
        self.stranded: List[WorkItem] = []  # items lost to a crash, awaiting retry
        self.current_item: Optional[WorkItem] = None
        self.supervisor = None          # set by the engine when FT is enabled

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        self.queue.store.put(_SHUTDOWN)

    def fail(self) -> None:
        """Crash-stop this Worker's runtime: the loop strands whatever it
        holds and stops consuming (detection is the supervisor's job)."""
        self.crashed = True

    def restore(self) -> None:
        """Clear the crash flag (the engine respawns the loop if needed)."""
        self.crashed = False

    def submit(self, task: Task, job_id: int = 0) -> WorkItem:
        item = WorkItem(
            task=task,
            done=Signal(self.node.sim),
            job_id=job_id,
            submitted_at=self.node.sim.now,
        )
        self.queue.push(item)  # type: ignore[arg-type]
        return item

    def resubmit(self, item: WorkItem) -> WorkItem:
        """Queue an existing item again (retry path: same ``done`` signal,
        same ``job_id`` -- a retry never changes tenants)."""
        item.submitted_at = self.node.sim.now
        self.queue.push(item)  # type: ignore[arg-type]
        return item

    def drain_pending(self) -> list[WorkItem]:
        """Reclaim queued-but-unstarted items plus anything stranded by a
        crash (called by the supervisor once the failure is detected)."""
        drained = self.queue.store.drain()
        items = [i for i in drained if i is not _SHUTDOWN]
        for sentinel in drained:
            if sentinel is _SHUTDOWN:           # re-arm a pending shutdown
                self.queue.store.put(sentinel)
        self.queue.enqueued -= len(items)
        items.extend(self.stranded)
        self.stranded = []
        return items

    # ------------------------------------------------------------------
    def _decide_device(self, task: Task, job_id: int = 0) -> str:
        """SW vs. HW for one task, per its job's policy (the historical
        entry point; the constants formerly inlined here live in
        :class:`~repro.core.runtime.policy.PolicyConfig` now)."""
        return self.jobs.policy(job_id).decide_device(self, task)

    def _execute(self, item: WorkItem) -> Generator:
        task = item.task
        kernel = self.registry.kernel(task.function)
        device = self._decide_device(task, item.job_id)
        if self.telemetry is not None:
            attrs = dict(
                task=task.task_id,
                function=task.function,
                device=device,
                items=task.items,
                queue_depth=self.queue.depth,
                job=item.job_id,
            )
            if task.tags:
                # provenance: which serving requests ride this task
                attrs["requests"] = task.tags.get("requests")
            self.telemetry.event("scheduler.decision", self.worker.name, **attrs)
        start = self.node.sim.now
        if device == "hw":
            self.hw_chosen += 1
            bpi = max(1, int(kernel.bytes_per_iteration()))
            try:
                yield from self.unilogic.invoke(
                    task.function,
                    caller_worker=self.worker_id,
                    items=task.items,
                    data_worker=task.data_worker,
                    bytes_per_item=bpi,
                    job=item.job_id,
                )
                host_worker, region = self.unilogic.nearest_region(
                    task.function, task.data_worker
                ) or (self.worker_id, None)
                energy = (
                    region.module.energy_pj(task.items) if region is not None else 0.0
                )
            except AcceleratorLost:
                # the hosting region died while the call was in flight
                # (fabric fault / Worker crash): degrade to software
                self.hw_chosen -= 1
                self.hw_fallbacks += 1
                device = "sw"
                item.fell_back = True
                if self.telemetry is not None:
                    attrs = dict(
                        task=task.task_id,
                        function=task.function,
                        job=item.job_id,
                    )
                    if task.tags:
                        attrs["requests"] = task.tags.get("requests")
                    self.telemetry.event(
                        "scheduler.accel_lost", self.worker.name, **attrs
                    )
        if device == "sw":
            self.sw_chosen += 1
            # software runs here; pull remote data through UNIMEM first
            if task.data_worker != self.worker_id:
                yield from self.node.transfer(
                    task.data_worker,
                    self.worker_id,
                    task.input_bytes,
                    TransactionType.DMA,
                )
            yield from self.worker.run_software(kernel, task.items)
            energy = self.worker.params.software.energy_pj(kernel, task.items)

        latency = self.node.sim.now - start
        item.device_used = device
        item.latency_ns = latency
        self.history.record(
            function=task.function,
            device=device,
            worker=self.worker_id,
            items=task.items,
            latency_ns=latency,
            energy_pj=energy,
            timestamp=self.node.sim.now,
            job=item.job_id,
        )
        # tenant-side accounting (job 0 = the implicit legacy job)
        self.jobs.record(item.job_id).note_done(device, energy)
        self.worker.note_job_call(item.job_id)

    # ------------------------------------------------------------------
    def _strand(self, item: WorkItem) -> None:
        """A popped item this crashed loop will never complete: hand it to
        the supervisor (unless a retry already claimed it) and fix the
        queue accounting -- the pop un-enqueued it without completing."""
        self.queue.enqueued -= 1
        if not item.redispatched:
            self.stranded.append(item)

    def run(self) -> Generator:
        """The scheduler's main loop (spawn as a simulation process).

        A crash-stop (:meth:`fail`) takes effect at the loop's next
        decision point: a popped item is stranded instead of executed,
        and a result computed while the flag was raised is discarded
        (the work happened, its answer died with the Worker).
        """
        lane = self.worker.name
        while True:
            item = yield self.queue.pop()
            if item is _SHUTDOWN:
                return self.tasks_done
            if self.crashed:
                self._strand(item)
                return None
            if item.done.triggered:
                # stale speculative duplicate: another execution already
                # finished this item; just balance the queue accounting
                self.queue.mark_done()
                continue
            self.current_item = item
            item.started_at = self.node.sim.now
            span_name = None
            if self.tracer is not None:
                span_name = f"{item.task.function}#{item.task.task_id}"
                self.tracer.begin(lane, span_name)
            yield from self._execute(item)
            if self.tracer is not None and span_name is not None:
                self.tracer.end(lane, span_name)
            self.current_item = None
            if self.crashed:
                # the crash hit mid-task: the result is lost with the Worker
                if self.supervisor is not None:
                    self.supervisor.work_lost_ns += item.latency_ns
                self.jobs.record(item.job_id).work_lost_ns += item.latency_ns
                self._strand(item)
                return None
            self.queue.mark_done()
            self.tasks_done += 1
            if not item.done.triggered:
                item.done.succeed(item)
