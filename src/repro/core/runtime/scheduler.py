"""The per-Worker scheduler.

"We will implement one scheduler per worker, which will manage the local
reconfigurable blocks and the execution of the accelerated functions."

Each :class:`WorkerScheduler` drains its local work queue.  For every
task it makes the SW/HW decision (Fig. 5's Execution Engine box):

1. if the trained :class:`~repro.core.runtime.models.DeviceSelector` has
   confident models for both devices, follow its choice;
2. otherwise compare analytic estimates: the software cost model vs. the
   best loaded module's latency (plus remote-invocation penalty);
3. a hardware choice is only honoured when some region in the UNILOGIC
   domain actually hosts the function -- loading new modules is the
   reconfiguration daemon's job, not the scheduler's.

Every completed call is appended to the Execution History.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.apps.taskgraph import Task
from repro.core.compute_node import ComputeNode
from repro.core.runtime.history import ExecutionHistory
from repro.core.runtime.lazy import LocalWorkQueue
from repro.core.runtime.models import DeviceSelector
from repro.core.unilogic import AcceleratorLost, UnilogicDomain
from repro.core.worker import FunctionRegistry
from repro.interconnect.message import TransactionType
from repro.sim import Signal


@dataclass
class WorkItem:
    """A task plus its completion signal (the engine joins on it).

    The fault-tolerance fields (attempts, redispatched, failed) stay at
    their defaults on every healthy run; ``done`` fires exactly once even
    when a retry races the original execution (first completion wins).
    """

    task: Task
    done: Signal
    device_used: Optional[str] = None
    latency_ns: float = 0.0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    attempts: int = 0               # retries consumed (0 = first dispatch)
    redispatched: bool = False      # claimed by the supervisor for retry
    failed: bool = False            # gave up: retry budget exhausted


_SHUTDOWN = object()


class WorkerScheduler:
    """Drains one Worker's queue, deciding SW vs. HW per task."""

    def __init__(
        self,
        node: ComputeNode,
        worker_id: int,
        queue: LocalWorkQueue,
        unilogic: UnilogicDomain,
        registry: FunctionRegistry,
        history: ExecutionHistory,
        selector: Optional[DeviceSelector] = None,
        energy_weight: float = 0.0,
        allow_hardware: bool = True,
        tracer=None,
        telemetry=None,
    ) -> None:
        self.node = node
        self.worker_id = worker_id
        self.worker = node.worker(worker_id)
        self.queue = queue
        self.unilogic = unilogic
        self.registry = registry
        self.history = history
        self.selector = selector
        self.energy_weight = energy_weight
        self.allow_hardware = allow_hardware
        self.telemetry = telemetry
        if tracer is None and telemetry is not None and telemetry.enabled:
            tracer = telemetry.tracer
        self.tracer = tracer
        self.tasks_done = 0
        self.hw_chosen = 0
        self.sw_chosen = 0
        self.hw_fallbacks = 0   # accelerator died mid-call, re-ran in SW
        # fault-tolerance state (inert unless the engine arms a supervisor)
        self.crashed = False
        self.stranded: list = []        # items lost to a crash, awaiting retry
        self.current_item: Optional[WorkItem] = None
        self.supervisor = None          # set by the engine when FT is enabled

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        self.queue.store.put(_SHUTDOWN)

    def fail(self) -> None:
        """Crash-stop this Worker's runtime: the loop strands whatever it
        holds and stops consuming (detection is the supervisor's job)."""
        self.crashed = True

    def restore(self) -> None:
        """Clear the crash flag (the engine respawns the loop if needed)."""
        self.crashed = False

    def submit(self, task: Task) -> WorkItem:
        item = WorkItem(
            task=task,
            done=Signal(self.node.sim),
            submitted_at=self.node.sim.now,
        )
        self.queue.push(item)  # type: ignore[arg-type]
        return item

    def resubmit(self, item: WorkItem) -> WorkItem:
        """Queue an existing item again (retry path: same ``done`` signal)."""
        item.submitted_at = self.node.sim.now
        self.queue.push(item)  # type: ignore[arg-type]
        return item

    def drain_pending(self) -> list:
        """Reclaim queued-but-unstarted items plus anything stranded by a
        crash (called by the supervisor once the failure is detected)."""
        drained = self.queue.store.drain()
        items = [i for i in drained if i is not _SHUTDOWN]
        for sentinel in drained:
            if sentinel is _SHUTDOWN:           # re-arm a pending shutdown
                self.queue.store.put(sentinel)
        self.queue.enqueued -= len(items)
        items.extend(self.stranded)
        self.stranded = []
        return items

    # ------------------------------------------------------------------
    def _decide_device(self, task: Task) -> str:
        function = task.function
        hw_hosted = (
            self.allow_hardware
            and self.unilogic.nearest_region(function, task.data_worker) is not None
        )
        if not hw_hosted:
            return "sw"
        if self.selector is not None:
            choice = self.selector.choose_device(
                function, task.items, self.energy_weight
            )
            if choice is not None:
                return choice
        # analytic fallback
        kernel = self.registry.kernel(function)
        sw_ns = self.worker.software_latency_ns(kernel, task.items)
        host_worker, region = self.unilogic.nearest_region(function, task.data_worker)
        hw_ns = region.module.latency_ns(task.items)
        if host_worker != task.data_worker:
            # remote ACE-lite penalty: data crosses the NoC uncached
            bytes_total = task.input_bytes + task.output_bytes
            hops = self.node.hop_distance(task.data_worker, host_worker)
            hw_ns += hops * 10.0 + bytes_total / 4.0  # rough NoC serialization
        return "hw" if hw_ns < sw_ns else "sw"

    def _execute(self, item: WorkItem) -> Generator:
        task = item.task
        kernel = self.registry.kernel(task.function)
        device = self._decide_device(task)
        if self.telemetry is not None:
            self.telemetry.event(
                "scheduler.decision",
                self.worker.name,
                task=task.task_id,
                function=task.function,
                device=device,
                items=task.items,
                queue_depth=self.queue.depth,
            )
        start = self.node.sim.now
        if device == "hw":
            self.hw_chosen += 1
            bpi = max(1, int(kernel.bytes_per_iteration()))
            try:
                yield from self.unilogic.invoke(
                    task.function,
                    caller_worker=self.worker_id,
                    items=task.items,
                    data_worker=task.data_worker,
                    bytes_per_item=bpi,
                )
                host_worker, region = self.unilogic.nearest_region(
                    task.function, task.data_worker
                ) or (self.worker_id, None)
                energy = (
                    region.module.energy_pj(task.items) if region is not None else 0.0
                )
            except AcceleratorLost:
                # the hosting region died while the call was in flight
                # (fabric fault / Worker crash): degrade to software
                self.hw_chosen -= 1
                self.hw_fallbacks += 1
                device = "sw"
                if self.telemetry is not None:
                    self.telemetry.event(
                        "scheduler.accel_lost",
                        self.worker.name,
                        task=task.task_id,
                        function=task.function,
                    )
        if device == "sw":
            self.sw_chosen += 1
            # software runs here; pull remote data through UNIMEM first
            if task.data_worker != self.worker_id:
                yield from self.node.transfer(
                    task.data_worker,
                    self.worker_id,
                    task.input_bytes,
                    TransactionType.DMA,
                )
            yield from self.worker.run_software(kernel, task.items)
            energy = self.worker.params.software.energy_pj(kernel, task.items)

        latency = self.node.sim.now - start
        item.device_used = device
        item.latency_ns = latency
        self.history.record(
            function=task.function,
            device=device,
            worker=self.worker_id,
            items=task.items,
            latency_ns=latency,
            energy_pj=energy,
            timestamp=self.node.sim.now,
        )

    # ------------------------------------------------------------------
    def _strand(self, item: WorkItem) -> None:
        """A popped item this crashed loop will never complete: hand it to
        the supervisor (unless a retry already claimed it) and fix the
        queue accounting -- the pop un-enqueued it without completing."""
        self.queue.enqueued -= 1
        if not item.redispatched:
            self.stranded.append(item)

    def run(self) -> Generator:
        """The scheduler's main loop (spawn as a simulation process).

        A crash-stop (:meth:`fail`) takes effect at the loop's next
        decision point: a popped item is stranded instead of executed,
        and a result computed while the flag was raised is discarded
        (the work happened, its answer died with the Worker).
        """
        lane = self.worker.name
        while True:
            item = yield self.queue.pop()
            if item is _SHUTDOWN:
                return self.tasks_done
            if self.crashed:
                self._strand(item)
                return None
            if item.done.triggered:
                # stale speculative duplicate: another execution already
                # finished this item; just balance the queue accounting
                self.queue.mark_done()
                continue
            self.current_item = item
            item.started_at = self.node.sim.now
            span_name = None
            if self.tracer is not None:
                span_name = f"{item.task.function}#{item.task.task_id}"
                self.tracer.begin(lane, span_name)
            yield from self._execute(item)
            if self.tracer is not None and span_name is not None:
                self.tracer.end(lane, span_name)
            self.current_item = None
            if self.crashed:
                # the crash hit mid-task: the result is lost with the Worker
                if self.supervisor is not None:
                    self.supervisor.work_lost_ns += item.latency_ns
                self._strand(item)
                return None
            self.queue.mark_done()
            self.tasks_done += 1
            if not item.done.triggered:
                item.done.succeed(item)
