"""The session/job layer: streams of jobs multiplexed onto one machine.

The paper's runtime (Fig. 2/5) serves *streams* of tasks from many
applications over shared reconfigurable Workers.  This module is that
layer: a :class:`JobManager` admits a stream of jobs onto one simulated
machine's :class:`~repro.core.runtime.engine.ExecutionEngine`, runs them
concurrently over the shared Workers, and rolls per-job
:class:`~repro.core.runtime.report.RunReport` s up into a
:class:`~repro.core.runtime.report.MachineReport`.

Three pieces:

- :class:`JobRecord` / :class:`JobRegistry` -- the *mechanism-side*
  per-tenant accounting (which policy decides for a task, how many
  calls/joules each tenant consumed).  Schedulers, the distributor and
  the supervisor only ever see job *ids* on work items and write their
  accounting through the registry -- they stay job-agnostic.
- :class:`JobHandle` -- the *session-side* view of one submitted job:
  state, completion signal, fair-share admission bookkeeping, and the
  final per-job report.
- :class:`JobManager` -- admission control plus one driver process per
  job.  ``submit_job(graph, policy, priority)`` returns immediately
  with a handle; drivers respect DAG dependences (layer-barrier or
  dataflow dispatch) and a weighted fair share of the machine's task
  slots, so a heavy tenant cannot starve a light one.

Fair-share admission: the machine offers ``slots_per_worker x workers``
concurrent task slots.  Each job's share is fixed when its driver starts,
as ``max(1, total_slots * priority / sum(active priorities))``.  A task
holds its job's slot from submission until its completion signal fires
-- including across supervisor retries after a Worker crash, so one
job's recovery never consumes another job's slots.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Generator, List, Optional, Union

from repro.core.runtime.policy import PolicyConfig, SchedulingPolicy, make_policy
from repro.core.runtime.report import JobOutcome, MachineReport, RunReport
from repro.sim import AllOf, Process, Signal, spawn

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.apps.taskgraph import Task, TaskGraph
    from repro.core.runtime.engine import ExecutionEngine
    from repro.core.runtime.scheduler import WorkItem


# ----------------------------------------------------------------------
# mechanism-side tenant accounting
# ----------------------------------------------------------------------


@dataclass
class JobRecord:
    """Per-tenant counters the mechanism layer writes through.

    Job 0 is the implicit legacy tenant: untagged ``submit_layer`` /
    ``submit_task`` calls land here under the engine's default policy.
    """

    job_id: int
    policy: SchedulingPolicy
    priority: int = 1
    tasks_done: int = 0
    sw_calls: int = 0
    hw_calls: int = 0
    energy_pj: float = 0.0
    energy_by_device: Dict[str, float] = field(default_factory=dict)
    placements_local: int = 0
    placements_remote: int = 0
    tasks_retried: int = 0
    tasks_unrecovered: int = 0
    work_lost_ns: float = 0.0

    def note_done(self, device: str, energy_pj: float) -> None:
        """One completed call of this tenant (scheduler-side hook)."""
        self.tasks_done += 1
        if device == "hw":
            self.hw_calls += 1
        else:
            self.sw_calls += 1
        self.energy_pj += energy_pj
        self.energy_by_device[device] = (
            self.energy_by_device.get(device, 0.0) + energy_pj
        )

    def note_placement(self, local: bool) -> None:
        if local:
            self.placements_local += 1
        else:
            self.placements_remote += 1

    def locality_fraction(self) -> float:
        total = self.placements_local + self.placements_remote
        return self.placements_local / total if total else 1.0


class JobRegistry:
    """job id -> :class:`JobRecord`; the one table the mechanism reads.

    Created by the engine with its default policy; the session layer
    registers additional tenants.  Unknown ids resolve to a fresh record
    under the default policy, so a bare scheduler never key-errors.
    """

    def __init__(self, default_policy: SchedulingPolicy) -> None:
        self.default_policy = default_policy
        self._records: Dict[int, JobRecord] = {
            0: JobRecord(0, default_policy)
        }

    def register(
        self, job_id: int, policy: SchedulingPolicy, priority: int = 1
    ) -> JobRecord:
        if job_id in self._records and self._records[job_id].tasks_done:
            raise ValueError(f"job {job_id} already registered and active")
        record = JobRecord(job_id, policy, priority)
        self._records[job_id] = record
        return record

    def record(self, job_id: int) -> JobRecord:
        rec = self._records.get(job_id)
        if rec is None:
            rec = JobRecord(job_id, self.default_policy)
            self._records[job_id] = rec
        return rec

    def policy(self, job_id: int) -> SchedulingPolicy:
        return self.record(job_id).policy

    def job_ids(self) -> List[int]:
        return sorted(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records.values())


# ----------------------------------------------------------------------
# session-side handles
# ----------------------------------------------------------------------


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"


@dataclass
class JobHandle:
    """The session-layer view of one submitted job."""

    job_id: int
    graph: "TaskGraph"
    policy: SchedulingPolicy
    priority: int
    dataflow: bool
    record: JobRecord
    done: Signal
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    state: JobState = JobState.PENDING
    report: Optional[RunReport] = None
    # fair-share admission bookkeeping
    share: Optional[int] = None          # None = unthrottled
    in_flight: int = 0
    peak_in_flight: int = 0
    on_done: Optional[Callable[[], None]] = None
    process: Optional[Process] = None
    # the WorkItems this job dispatched, in dispatch order -- the serving
    # layer reads execution timing/device off them at completion time
    items: List["WorkItem"] = field(default_factory=list)
    # checkpoint restore: graph indices already completed in a previous
    # incarnation of this job -- the drivers skip them (dependences are
    # treated as satisfied) and only the lost frontier is replayed
    completed: frozenset = frozenset()
    tasks_skipped: int = 0

    @property
    def finished(self) -> bool:
        return self.state is JobState.DONE

    @property
    def latency_ns(self) -> float:
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.submitted_at


# ----------------------------------------------------------------------
# the job manager
# ----------------------------------------------------------------------


class JobManager:
    """Admits a stream of jobs onto one engine's shared Workers.

    ``fair_share=False`` disables admission throttling entirely (no
    slot watcher processes are spawned), which is the legacy single-job
    path ``ExecutionEngine.run_graph`` rides -- bit-identical to the
    pre-multi-tenant runtime.
    """

    def __init__(
        self,
        engine: "ExecutionEngine",
        slots_per_worker: int = 2,
        fair_share: bool = True,
        auto_stop: bool = True,
    ) -> None:
        if slots_per_worker < 1:
            raise ValueError("slots_per_worker must be >= 1")
        self.engine = engine
        self.sim = engine.node.sim
        self.fair_share = fair_share
        self.auto_stop = auto_stop
        self.total_slots = slots_per_worker * len(engine.node.workers)
        self.handles: List[JobHandle] = []
        self._ids = itertools.count(1)  # 0 is the legacy/default tenant
        self._active = 0
        self._wakeup = Signal(self.sim)
        self._draining = False
        self._drain_signal: Optional[Signal] = None

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def _resolve_policy(
        self, policy: Union[None, str, SchedulingPolicy]
    ) -> SchedulingPolicy:
        if policy is None:
            return self.engine.default_policy
        if isinstance(policy, str):
            return make_policy(policy, self.engine.policy_config)
        return policy

    def submit_job(
        self,
        graph: "TaskGraph",
        policy: Union[None, str, SchedulingPolicy] = None,
        priority: int = 1,
        dataflow: bool = False,
        completed: Optional[frozenset] = None,
    ) -> JobHandle:
        """Admit one job onto the machine; returns its handle.

        ``policy`` may be a :class:`SchedulingPolicy` instance, a
        built-in policy name (``greedy-hw``, ``energy``, ``locality``),
        or ``None`` for the engine's default.  ``priority`` weights the
        job's fair share of the machine's task slots.  ``completed`` --
        graph indices (positions in ``graph.tasks``) already finished in
        a checkpointed earlier incarnation -- restricts dispatch to the
        remaining tasks (checkpoint restore replays only lost work).
        """
        if priority < 1:
            raise ValueError(f"priority must be >= 1, got {priority}")
        if self._draining:
            raise RuntimeError(
                "JobManager is draining; no new jobs are admitted"
            )
        done_indices = frozenset(completed or ())
        if done_indices and (min(done_indices) < 0 or max(done_indices) >= len(graph.tasks)):
            raise ValueError("completed indices out of range for this graph")
        resolved = self._resolve_policy(policy)
        job_id = next(self._ids)
        record = self.engine.jobs.register(job_id, resolved, priority)
        handle = JobHandle(
            job_id=job_id,
            graph=graph,
            policy=resolved,
            priority=priority,
            dataflow=dataflow,
            record=record,
            done=Signal(self.sim),
            submitted_at=self.sim.now,
            completed=done_indices,
        )
        self.handles.append(handle)
        self._active += 1
        self.engine.start()
        handle.process = spawn(
            self.sim, self._drive(handle), name=f"job{job_id}"
        )
        if self.engine.telemetry is not None:
            self.engine.telemetry.event(
                "runtime.job_submitted",
                f"{self.engine.node.name}.runtime",
                job=job_id,
                policy=resolved.name,
                priority=priority,
                tasks=len(graph),
            )
        return handle

    # ------------------------------------------------------------------
    # fair-share admission
    # ------------------------------------------------------------------
    def _fair_share_of(self, job: JobHandle) -> int:
        active = [h for h in self.handles if not h.finished]
        total_priority = sum(h.priority for h in active) or job.priority
        return max(1, (self.total_slots * job.priority) // total_priority)

    def _admit(self, job: JobHandle) -> Generator:
        """Block the driver until the job is under its slot share."""
        if job.share is None:
            return
        while job.in_flight >= job.share:
            yield self._wakeup

    def _track(self, job: JobHandle, item: "WorkItem") -> None:
        """Account one admitted task against the job's slots; the slot
        frees when the item's completion signal fires -- retries of the
        same item keep holding the same slot."""
        if job.share is None:
            return
        job.in_flight += 1
        job.peak_in_flight = max(job.peak_in_flight, job.in_flight)

        def release() -> Generator:
            yield item.done
            job.in_flight -= 1
            self._kick()

        spawn(self.sim, release(), name=f"slot.j{job.job_id}.{item.task.task_id}")

    def _kick(self) -> None:
        """Wake every driver blocked on admission to re-check its share."""
        stale, self._wakeup = self._wakeup, Signal(self.sim)
        stale.succeed(None)

    # ------------------------------------------------------------------
    # drivers (one simulation process per job)
    # ------------------------------------------------------------------
    def _drive(self, job: JobHandle) -> Generator:
        engine = self.engine
        job.started_at = self.sim.now
        job.state = JobState.RUNNING
        if self.fair_share:
            job.share = self._fair_share_of(job)
        if engine.telemetry is not None:
            engine.telemetry.event(
                "runtime.job_start",
                f"{engine.node.name}.runtime",
                job=job.job_id,
                policy=job.policy.name,
                share=job.share,
            )
        driver = self._dataflow_driver if job.dataflow else self._layer_driver
        yield from driver(job)
        job.finished_at = self.sim.now
        job.state = JobState.DONE
        job.report = self._job_report(job)
        if engine.telemetry is not None:
            engine.telemetry.event(
                "runtime.job_end",
                f"{engine.node.name}.runtime",
                job=job.job_id,
                policy=job.policy.name,
                latency_ns=job.latency_ns,
                tasks=len(job.graph),
                retried=job.record.tasks_retried,
            )
        if job.on_done is not None:
            job.on_done()
        job.done.succeed(job)
        self._active -= 1
        if self._active == 0:
            if self._drain_signal is not None:
                signal, self._drain_signal = self._drain_signal, None
                signal.succeed(self)
            if self.auto_stop:
                engine.stop()

    # ------------------------------------------------------------------
    # drain barrier
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def active_jobs(self) -> int:
        return self._active

    def drain(self) -> Signal:
        """Stop admitting jobs; the returned Signal fires once the last
        in-flight job completes (immediately if the machine is idle).

        The quiesce barrier the service daemon's ``drain``/``shutdown``
        commands ride: submitted work finishes, new work is refused with
        a ``RuntimeError``.  Calling :meth:`drain` again returns a fresh
        signal honouring the same barrier.
        """
        self._draining = True
        signal = Signal(self.sim)
        if self._active == 0:
            signal.succeed(self)
            return signal
        if self._drain_signal is None:
            self._drain_signal = signal
            return signal
        # chain: both callers' signals fire at the barrier
        prior = self._drain_signal

        def relay() -> Generator:
            yield prior
            signal.succeed(self)

        spawn(self.sim, relay(), name="jobs.drain")
        return signal

    def resume_admission(self) -> None:
        """Lift a drain barrier (a drained daemon accepting new epochs)."""
        self._draining = False

    def _layer_driver(self, job: JobHandle) -> Generator:
        """Dispatch layer by layer, honouring DAG dependences by barrier."""
        engine = self.engine
        # restore path: map task identity -> graph index once, so layers
        # can skip checkpoint-completed tasks (barrier only waits on
        # what was actually dispatched)
        skip = (
            {
                t.task_id
                for i, t in enumerate(job.graph.tasks)
                if i in job.completed
            }
            if job.completed
            else frozenset()
        )
        completed = 0
        for layer in job.graph.layers():
            items: List["WorkItem"] = []
            for task in layer:
                if task.task_id in skip:
                    job.tasks_skipped += 1
                    continue
                yield from self._admit(job)
                item = engine.submit_task(task, job_id=job.job_id)
                self._track(job, item)
                items.append(item)
                job.items.append(item)
            if items:
                yield AllOf([item.done for item in items])
            completed += len(items)
            if engine.retrain_every and engine.selector is not None:
                if completed // engine.retrain_every != (
                    completed - len(items)
                ) // engine.retrain_every:
                    engine.selector.train(engine.history)
                    if engine.telemetry is not None:
                        engine.telemetry.event(
                            "runtime.retrain",
                            f"{engine.node.name}.runtime",
                            completed=completed,
                            history=len(engine.history),
                        )
        return completed

    def _dataflow_driver(self, job: JobHandle) -> Generator:
        """Dependence-triggered dispatch: every task is released the
        moment its own predecessors complete -- no layer barrier, so
        independent chains pipeline across layers."""
        engine = self.engine
        done_signals: Dict[int, Signal] = {}
        items: List["WorkItem"] = []
        skip = (
            {
                t.task_id
                for i, t in enumerate(job.graph.tasks)
                if i in job.completed
            }
            if job.completed
            else frozenset()
        )

        def watcher(task: "Task") -> Generator:
            deps = [done_signals[d] for d in task.deps]
            if deps:
                yield AllOf(deps)
            yield from self._admit(job)
            item = engine.submit_task(task, job_id=job.job_id)
            self._track(job, item)
            items.append(item)
            job.items.append(item)
            result = yield item.done
            return result

        def skipped(task: "Task") -> Generator:
            # checkpoint-completed: no dispatch, dependences satisfied
            # the moment the process starts (its done signal fires now)
            job.tasks_skipped += 1
            return
            yield  # pragma: no cover - makes this a generator

        for task in job.graph.tasks:
            gen = skipped(task) if task.task_id in skip else watcher(task)
            proc = spawn(
                self.sim, gen, name=f"dep.j{job.job_id}.{task.task_id}"
            )
            done_signals[task.task_id] = proc.done
        yield AllOf([done_signals[t.task_id] for t in job.graph.tasks])
        return len(items)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _job_report(self, job: JobHandle) -> RunReport:
        """Roll one tenant's counters into a per-job :class:`RunReport`.

        Machine-shared counters (reconfigurations, status traffic,
        machine-wide failure detection) live on the
        :class:`MachineReport`, not on any single tenant.
        """
        rec = job.record
        return RunReport(
            makespan_ns=job.latency_ns,
            tasks=len(job.graph),
            sw_calls=rec.sw_calls,
            hw_calls=rec.hw_calls,
            energy_pj=rec.energy_pj,
            energy_breakdown=dict(rec.energy_by_device),
            reconfigurations=0,
            status_messages=0,
            placement_locality=rec.locality_fraction(),
            device_mix={"sw": rec.sw_calls, "hw": rec.hw_calls},
            tasks_retried=rec.tasks_retried,
            tasks_unrecovered=rec.tasks_unrecovered,
            work_lost_ns=rec.work_lost_ns,
        )

    def collect(self) -> MachineReport:
        """Build the multi-tenant roll-up from everything run so far."""
        engine = self.engine
        outcomes = []
        for job in self.handles:
            outcomes.append(
                JobOutcome(
                    job_id=job.job_id,
                    policy=job.policy.name,
                    priority=job.priority,
                    submitted_at=job.submitted_at,
                    started_at=job.started_at,
                    finished_at=job.finished_at,
                    report=(
                        job.report
                        if job.report is not None
                        else self._job_report(job)
                    ),
                )
            )
        finished = [j.finished_at for j in self.handles if j.finished_at is not None]
        submitted = [j.submitted_at for j in self.handles]
        makespan = (max(finished) - min(submitted)) if finished else 0.0
        sup = engine.supervisor
        return MachineReport(
            makespan_ns=makespan,
            jobs=outcomes,
            energy_pj=engine.node.ledger.total_pj(),
            reconfigurations=sum(
                w.reconfig.reconfigurations for w in engine.node.workers
            ),
            status_messages=engine.tracker.status_messages,
            worker_failures=len(sup.failures) if sup is not None else 0,
            mean_detection_ns=sup.mean_detection_ns() if sup is not None else 0.0,
            mean_recovery_ns=sup.mean_recovery_ns() if sup is not None else 0.0,
        )

    def run(self) -> MachineReport:
        """Run the simulation until every submitted job completes, then
        return the :class:`MachineReport` roll-up."""
        self.sim.run()
        return self.collect()
