"""The work-and-data distribution algorithm.

"Whenever a function is called, a work and data distribution algorithm in
the runtime system (included in the Execution Engine ...) will decide
whether the function will be executed in software or in hardware based on
the local status and the status of other Workers in the vicinity."

:class:`WorkDistributor` answers the *where* question: which Worker's
queue a task should join.  Since the policy extraction it is pure
mechanism -- the affinity-vs-load trade itself lives in the per-job
:class:`~repro.core.runtime.policy.SchedulingPolicy` (looked up through
the shared :class:`~repro.core.runtime.jobs.JobRegistry`); the
distributor supplies the decision context (node topology, queues, the
lazy tracker, and the UNILOGIC domain when the engine wired it) and
keeps the machine-wide plus per-tenant locality accounting.  The *how*
(SW vs. HW) is the per-worker scheduler's job.

The old ``DistributionPolicy`` weights dataclass grew into the shared
:class:`~repro.core.runtime.policy.PolicyConfig`; the name remains as an
alias, re-exported here for existing callers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, List, Optional, Set

from repro.apps.taskgraph import Task
from repro.core.compute_node import ComputeNode
from repro.core.runtime.jobs import JobRegistry
from repro.core.runtime.lazy import LazyStatusTracker, LocalWorkQueue
from repro.core.runtime.policy import (
    DistributionPolicy,
    GreedyHardwarePolicy,
    PolicyConfig,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.unilogic import UnilogicDomain

__all__ = ["DistributionPolicy", "PolicyConfig", "WorkDistributor"]


class WorkDistributor:
    """Chooses the execution Worker for each task."""

    def __init__(
        self,
        node: ComputeNode,
        queues: List[LocalWorkQueue],
        tracker: LazyStatusTracker,
        policy: PolicyConfig = PolicyConfig(),
        jobs: Optional[JobRegistry] = None,
    ) -> None:
        if len(queues) != len(node):
            raise ValueError("one queue per worker required")
        self.node = node
        self.queues = queues
        self.tracker = tracker
        self.policy = policy
        # standalone distributors (tests) get a single-tenant registry
        # whose default policy carries this config
        self.jobs = (
            jobs if jobs is not None else JobRegistry(GreedyHardwarePolicy(policy))
        )
        self.unilogic: Optional["UnilogicDomain"] = None  # wired by the engine
        self.placements_local = 0   # task placed with its data
        self.placements_remote = 0
        self._down: Set[int] = set()   # failed Workers, out of the pool

    # ------------------------------------------------------------------
    # graceful degradation: failed Workers leave the placement pool and
    # rejoin on recovery (armed by the runtime's failure detector)
    # ------------------------------------------------------------------
    def mark_down(self, worker: int) -> None:
        self._down.add(worker)

    def mark_up(self, worker: int) -> None:
        self._down.discard(worker)

    @property
    def down_workers(self) -> FrozenSet[int]:
        return frozenset(self._down)

    def alive_workers(self) -> List[int]:
        """Placement candidates; a fully-dark pool falls back to everyone
        (placements then strand until a Worker rejoins)."""
        if not self._down:
            return list(range(len(self.queues)))
        alive = [w for w in range(len(self.queues)) if w not in self._down]
        return alive or list(range(len(self.queues)))

    def score(self, task: Task, worker: int, observer: int) -> float:
        """The default policy's placement score (kept as the historical
        query API; per-job scoring goes through :meth:`choose_worker`)."""
        return self.jobs.default_policy.placement_score(
            self, task, worker, observer
        )

    def choose_worker(self, task: Task, observer: int = 0, job: int = 0) -> int:
        """The Worker the job's policy picks among the Workers currently
        in the placement pool."""
        best = self.jobs.policy(job).choose_worker(self, task, observer)
        local = best == task.data_worker
        if local:
            self.placements_local += 1
        else:
            self.placements_remote += 1
        self.jobs.record(job).note_placement(local)
        return best

    def dispatch(self, task: Task, observer: int = 0, job: int = 0) -> int:
        """Choose and enqueue; returns the chosen worker id."""
        worker = self.choose_worker(task, observer, job)
        self.queues[worker].push(task)
        return worker

    def locality_fraction(self) -> float:
        total = self.placements_local + self.placements_remote
        return self.placements_local / total if total else 1.0
