"""The work-and-data distribution algorithm.

"Whenever a function is called, a work and data distribution algorithm in
the runtime system (included in the Execution Engine ...) will decide
whether the function will be executed in software or in hardware based on
the local status and the status of other Workers in the vicinity."

:class:`WorkDistributor` answers the *where* question: which Worker's
queue a task should join, trading data affinity (UNIMEM home of its
working set) against believed load (from the lazy tracker).  The *how*
(SW vs. HW) is the per-worker scheduler's job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set

from repro.apps.taskgraph import Task
from repro.core.compute_node import ComputeNode
from repro.core.runtime.lazy import LazyStatusTracker, LocalWorkQueue


@dataclass(frozen=True)
class DistributionPolicy:
    """Weights of the placement score (lower score wins).

    ``transfer_penalty_ns_per_byte_hop`` prices moving the task's data;
    ``load_penalty_ns`` prices one queued task ahead of us.
    """

    transfer_penalty_ns_per_byte_hop: float = 0.1
    load_penalty_ns: float = 20_000.0
    data_affinity_only: bool = False  # ablation: ignore load entirely


class WorkDistributor:
    """Chooses the execution Worker for each task."""

    def __init__(
        self,
        node: ComputeNode,
        queues: List[LocalWorkQueue],
        tracker: LazyStatusTracker,
        policy: DistributionPolicy = DistributionPolicy(),
    ) -> None:
        if len(queues) != len(node):
            raise ValueError("one queue per worker required")
        self.node = node
        self.queues = queues
        self.tracker = tracker
        self.policy = policy
        self.placements_local = 0   # task placed with its data
        self.placements_remote = 0
        self._down: Set[int] = set()   # failed Workers, out of the pool

    # ------------------------------------------------------------------
    # graceful degradation: failed Workers leave the placement pool and
    # rejoin on recovery (armed by the runtime's failure detector)
    # ------------------------------------------------------------------
    def mark_down(self, worker: int) -> None:
        self._down.add(worker)

    def mark_up(self, worker: int) -> None:
        self._down.discard(worker)

    @property
    def down_workers(self) -> FrozenSet[int]:
        return frozenset(self._down)

    def alive_workers(self) -> List[int]:
        """Placement candidates; a fully-dark pool falls back to everyone
        (placements then strand until a Worker rejoins)."""
        if not self._down:
            return list(range(len(self.queues)))
        alive = [w for w in range(len(self.queues)) if w not in self._down]
        return alive or list(range(len(self.queues)))

    def score(self, task: Task, worker: int, observer: int) -> float:
        data_bytes = task.input_bytes + task.output_bytes
        hops = self.node.hop_distance(task.data_worker, worker)
        transfer = hops * data_bytes * self.policy.transfer_penalty_ns_per_byte_hop
        if self.policy.data_affinity_only:
            return transfer
        load = self.tracker.estimated_load(observer, worker)
        return transfer + load * self.policy.load_penalty_ns

    def choose_worker(self, task: Task, observer: int = 0) -> int:
        """The Worker whose (affinity + load) score is lowest, among the
        Workers currently in the placement pool."""
        best = min(
            self.alive_workers(),
            key=lambda w: (self.score(task, w, observer), w),
        )
        if best == task.data_worker:
            self.placements_local += 1
        else:
            self.placements_remote += 1
        return best

    def dispatch(self, task: Task, observer: int = 0) -> int:
        """Choose and enqueue; returns the chosen worker id."""
        worker = self.choose_worker(task, observer)
        self.queues[worker].push(task)
        return worker

    def locality_fraction(self) -> float:
        total = self.placements_local + self.placements_remote
        return self.placements_local / total if total else 1.0
