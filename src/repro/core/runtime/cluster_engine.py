"""The machine-level execution engine.

Runs one task graph across *all* Compute Nodes of a
:class:`~repro.core.Machine`, realizing the paper's split of concerns:
the per-node runtime "schedules tasks inside a PGAS partition" while MPI
"provides the ... primitives for communication between PGAS partitions"
(Section 4).  Tasks carry machine-global affinities; the cluster engine
assigns each to its Compute Node (the PGAS partition of Fig. 1), the
node's own Execution Engine distributes it among Workers, and layer
boundaries that span nodes cost a world barrier on the inter-node tree.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.apps.taskgraph import Task, TaskGraph
from repro.core.machine import Machine
from repro.core.runtime.engine import ExecutionEngine, RunReport
from repro.core.worker import FunctionRegistry
from repro.fabric.module_library import ModuleLibrary
from repro.sim import AllOf, Timeout, spawn


@dataclass
class ClusterRunReport:
    """Aggregate of one machine-wide run."""

    makespan_ns: float
    tasks: int
    barrier_ns_total: float
    barriers: int
    node_reports: List[RunReport] = field(default_factory=list)

    @property
    def sw_calls(self) -> int:
        return sum(r.sw_calls for r in self.node_reports)

    @property
    def hw_calls(self) -> int:
        return sum(r.hw_calls for r in self.node_reports)

    @property
    def energy_pj(self) -> float:
        return sum(r.energy_pj for r in self.node_reports)

    @property
    def barrier_fraction(self) -> float:
        if self.makespan_ns <= 0:
            return 0.0
        return self.barrier_ns_total / self.makespan_ns

    # -- machine-wide availability aggregates ---------------------------
    @property
    def worker_failures(self) -> int:
        return sum(r.worker_failures for r in self.node_reports)

    @property
    def tasks_retried(self) -> int:
        return sum(r.tasks_retried for r in self.node_reports)

    @property
    def tasks_unrecovered(self) -> int:
        return sum(r.tasks_unrecovered for r in self.node_reports)

    @property
    def work_lost_ns(self) -> float:
        return sum(r.work_lost_ns for r in self.node_reports)

    @property
    def availability_ok(self) -> bool:
        return all(r.availability_ok for r in self.node_reports)


class ClusterEngine:
    """One Execution Engine per Compute Node + inter-node coordination."""

    def __init__(
        self,
        machine: Machine,
        registry: FunctionRegistry,
        library: Optional[ModuleLibrary] = None,
        **engine_kwargs,
    ) -> None:
        self.machine = machine
        self.registry = registry
        self.engines: List[ExecutionEngine] = [
            ExecutionEngine(node, registry, library, **engine_kwargs)
            for node in machine.nodes
        ]
        self.barrier_ns_total = 0.0
        self.barriers = 0
        self.cross_node_fetches = 0
        self.cross_node_fetch_ns = 0.0

    # ------------------------------------------------------------------
    # machine-global fault hooks (Worker ids are machine-wide here)
    # ------------------------------------------------------------------
    def _locate_worker(self, global_worker: int) -> tuple:
        workers_per_node = len(self.machine.node(0))
        total = workers_per_node * len(self.machine)
        g = global_worker % total
        return g // workers_per_node, g % workers_per_node

    def crash_worker(self, global_worker: int, permanent: bool = True) -> None:
        node_id, local = self._locate_worker(global_worker)
        self.engines[node_id].crash_worker(local, permanent=permanent)

    def recover_worker(self, global_worker: int) -> None:
        node_id, local = self._locate_worker(global_worker)
        self.engines[node_id].recover_worker(local)

    # ------------------------------------------------------------------
    def _localize(self, task: Task) -> tuple:
        """Map a machine-global task onto (node_id, local task, fetch_ns).

        ``fetch_ns`` is the cost of pulling the task's input from another
        Compute Node (0 when the data is already on the assigned node);
        inside the node the working copy then lives with the task.
        """
        workers_per_node = len(self.machine.node(0))
        total = workers_per_node * len(self.machine)
        affinity = task.affinity_worker % total
        data = task.data_worker % total
        node_id = affinity // workers_per_node
        data_node = data // workers_per_node
        local_worker = affinity % workers_per_node
        fetch_ns = 0.0
        if data_node != node_id and task.input_bytes:
            fetch_ns, _ = self.machine.cross_node_access_cost(
                data_node, data % workers_per_node,
                node_id, local_worker, task.input_bytes,
            )
            self.cross_node_fetches += 1
            self.cross_node_fetch_ns += fetch_ns
        local = dataclasses.replace(
            task,
            affinity_worker=local_worker,
            data_worker=(
                data % workers_per_node if data_node == node_id else local_worker
            ),
            deps=(),  # dependences are enforced by the layer barrier
        )
        return node_id, local, fetch_ns

    def _driver(self, graph: TaskGraph, out: Dict) -> Generator:
        layers = graph.layers()
        for depth, layer in enumerate(layers):
            by_node: Dict[int, List[Task]] = {}
            worst_fetch = 0.0
            for task in layer:
                node_id, local, fetch_ns = self._localize(task)
                by_node.setdefault(node_id, []).append(local)
                worst_fetch = max(worst_fetch, fetch_ns)
            if worst_fetch > 0:
                # cross-node input fetches overlap with each other; the
                # layer cannot start computing before the slowest lands
                yield Timeout(worst_fetch)
            items = []
            for node_id, tasks in by_node.items():
                items.extend(self.engines[node_id].submit_layer(tasks))
            yield AllOf([item.done for item in items])
            # a layer spanning several nodes synchronizes through MPI
            if len(by_node) > 1 and depth < len(layers) - 1:
                barrier = self.machine.world.barrier()
                self.barrier_ns_total += barrier.latency_ns
                self.barriers += 1
                yield Timeout(barrier.latency_ns)
        out["at"] = self.machine.sim.now

    # ------------------------------------------------------------------
    def run_graph(self, graph: TaskGraph) -> ClusterRunReport:
        sim = self.machine.sim
        start = sim.now
        for engine in self.engines:
            engine.start()
        out: Dict = {}

        def main() -> Generator:
            yield from self._driver(graph, out)
            for engine in self.engines:
                engine.stop()

        spawn(sim, main(), name="cluster-engine")
        sim.run()
        makespan = out.get("at", sim.now) - start
        node_reports = [
            engine._report(graph, makespan) for engine in self.engines
        ]
        return ClusterRunReport(
            makespan_ns=makespan,
            tasks=len(graph),
            barrier_ns_total=self.barrier_ns_total,
            barriers=self.barriers,
            node_reports=node_reports,
        )
