"""UNILOGIC: shared partitioned reconfigurable resources.

"Within a Compute Node, any Worker can access any Reconfigurable block
(even remote blocks that belong to other Workers) through the multi-layer
interconnect ... However, since this is not an ACE port (no snooping
protocol is supported) the remote Reconfigurable block should disable its
data cache (and would not be as efficient as a local one)." (Section 4.1)

:class:`UnilogicDomain` is the domain-wide view of every Worker's
regions.  An invocation names the *caller* Worker, the *function*, and
where the *data* lives; the domain finds a hosting region (preferring one
co-located with the data), models the control-path cost of reaching a
remote block (load/store register writes across the interconnect), and
models the data path with the ACE/ACE-lite asymmetry:

- accelerator co-located with the data: coherent local streaming, the
  accelerator's cache captures ``reuse`` of the traffic;
- accelerator remote from the data: cache disabled -- every byte crosses
  the interconnect every time it is touched, so effective traffic is
  ``bytes * (1 + reuse_turns)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from repro.core.compute_node import ComputeNode
from repro.fabric.region import Region, RegionState
from repro.interconnect.message import TransactionType
from repro.sim import Timeout


@dataclass
class AcceleratorAccess:
    """Report of one UNILOGIC invocation."""

    function: str
    caller_worker: int
    host_worker: int
    data_worker: int
    items: int
    latency_ns: float
    data_bytes: int
    remote_control: bool
    remote_data: bool
    job: int = 0        # owning tenant (0 = the implicit legacy job)


class AcceleratorLost(RuntimeError):
    """The hosting region died while an invocation was in flight.

    A fabric fault (or chaos-injected Worker crash) can blank a region
    between the moment a caller resolved it and the moment the call
    lands -- the control/data transfers across the interconnect take
    simulated time.  Callers should treat the invocation as failed and
    degrade (typically: re-run the function in software)."""


class UnilogicDomain:
    """The shared accelerator pool of one Compute Node."""

    #: register writes to start a call + completion interrupt
    CONTROL_BYTES = 64

    def __init__(self, node: ComputeNode) -> None:
        self.node = node
        self.invocations: List[AcceleratorAccess] = []
        self.remote_invocations = 0

    # ------------------------------------------------------------------
    # region discovery
    # ------------------------------------------------------------------
    def hosting_regions(self, function: str) -> List[Tuple[int, Region]]:
        """(worker_id, region) pairs across the whole domain, any Worker."""
        out = []
        for w in self.node.workers:
            for region in w.fabric.regions:
                if region.state is RegionState.READY and region.function == function:
                    out.append((w.worker_id, region))
        return out

    def nearest_region(
        self, function: str, near_worker: int
    ) -> Optional[Tuple[int, Region]]:
        """The hosting region closest (hop-wise) to ``near_worker``."""
        candidates = self.hosting_regions(function)
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda pair: (self.node.hop_distance(near_worker, pair[0]), pair[0]),
        )

    def total_regions(self) -> int:
        return sum(len(w.fabric) for w in self.node.workers)

    # ------------------------------------------------------------------
    # invocation
    # ------------------------------------------------------------------
    def invoke(
        self,
        function: str,
        caller_worker: int,
        items: int,
        data_worker: Optional[int] = None,
        bytes_per_item: int = 8,
        reuse_turns: float = 0.0,
        job: int = 0,
    ) -> Generator:
        """Simulation process: one shared-accelerator call.

        ``reuse_turns`` is how many times the working set is re-touched
        beyond the first pass (temporal locality the local cache would
        capture).  Returns an :class:`AcceleratorAccess`.
        """
        if items <= 0:
            raise ValueError(f"items must be positive, got {items}")
        if reuse_turns < 0:
            raise ValueError("reuse_turns must be non-negative")
        data_worker = caller_worker if data_worker is None else data_worker

        found = self.nearest_region(function, data_worker)
        if found is None:
            raise LookupError(f"no region in the domain hosts {function!r}")
        host_worker, region = found
        host = self.node.workers[host_worker]
        start = self.node.sim.now

        # control path: register writes from the caller to the host block
        remote_control = host_worker != caller_worker
        if remote_control:
            self.remote_invocations += 1
            yield from self.node.transfer(
                caller_worker, host_worker, self.CONTROL_BYTES, TransactionType.STORE
            )

        data_bytes = items * bytes_per_item
        remote_data = host_worker != data_worker

        # data path + execution overlap is approximated as sequential
        # stream-in, pipelined execute, stream-out folded into the stream.
        if not remote_data:
            # ACE path: local coherent access; cache captures re-touches
            reuse_fraction = reuse_turns / (1.0 + reuse_turns)
            yield from host.local_stream(0, data_bytes, False, reuse=reuse_fraction)
        else:
            # ACE-lite path: cache disabled; every touch crosses the NoC
            total = int(data_bytes * (1.0 + reuse_turns))
            yield from self.node.transfer(
                data_worker, host_worker, total, TransactionType.LOAD
            )
            yield from self.node.workers[data_worker].local_stream(0, total, False)

        # the transfers above took simulated time: the region may have
        # died (fabric fault / Worker crash) while the call was in flight
        if region.state is not RegionState.READY or region.function != function:
            raise AcceleratorLost(
                f"region hosting {function!r} on worker {host_worker} died mid-call"
            )
        accel = host.accelerator_for_region(region)
        before = accel.energy_pj
        yield from accel.call(f"w{caller_worker}", items)
        if region.state is not RegionState.READY or region.function != function:
            # unloaded *during* the call: the result died with the fabric
            raise AcceleratorLost(
                f"region hosting {function!r} on worker {host_worker} died mid-call"
            )
        region.last_used_at = self.node.sim.now
        host.hw_calls += 1
        host.ledger.add(f"{host.name}.fabric", accel.energy_pj - before)

        # completion notification back to the caller
        if remote_control:
            yield from self.node.transfer(
                host_worker, caller_worker, 8, TransactionType.INTERRUPT
            )

        access = AcceleratorAccess(
            function=function,
            caller_worker=caller_worker,
            host_worker=host_worker,
            data_worker=data_worker,
            items=items,
            latency_ns=self.node.sim.now - start,
            data_bytes=data_bytes,
            remote_control=remote_control,
            remote_data=remote_data,
            job=job,
        )
        self.invocations.append(access)
        return access

    # ------------------------------------------------------------------
    def utilization_by_worker(self) -> dict:
        counts: dict = {w.worker_id: 0 for w in self.node.workers}
        for inv in self.invocations:
            counts[inv.host_worker] += 1
        return counts

    def utilization_by_job(self) -> dict:
        """Accelerator calls per tenant: how the shared fabric's regions
        were arbitrated across concurrent jobs."""
        counts: dict = {}
        for inv in self.invocations:
            counts[inv.job] = counts.get(inv.job, 0) + 1
        return counts
