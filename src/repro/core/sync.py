"""Synchronization over UNIMEM: remote atomics, locks, barriers.

The multi-layer interconnect carries "load and store commands, DMA
operations, interrupts, and synchronization between the Workers"
(Section 4.1), and the paper's case against DMA-only designs is exactly
"small data transfers such as messages to synchronize remote threads".

These primitives are built the way UNIMEM implies: a synchronization
variable lives in *one* Worker's memory (its home); remote Workers
operate on it with small SYNC-class transactions executed at the home
(no caching, no global coherence).  Costs therefore scale with hop
distance to the home -- measurable, and measured in the tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from repro.core.compute_node import ComputeNode
from repro.interconnect.message import TransactionType
from repro.sim import Signal, Timeout

#: time the home's near-memory ALU takes for one atomic op
_ATOMIC_ALU_NS = 4.0
#: payload of one atomic request/response
_ATOMIC_BYTES = 16

_cell_ids = itertools.count()


class AtomicCell:
    """A word of memory supporting remote atomic operations.

    The functional value is exact (operations are serialized by the
    simulation's event order at the home); the timing charges the
    round trip over the node's interconnect.
    """

    def __init__(self, node: ComputeNode, home_worker: int, initial: int = 0) -> None:
        if not 0 <= home_worker < len(node):
            raise ValueError(f"no worker {home_worker} in this node")
        self.node = node
        self.home_worker = home_worker
        self.value = initial
        self.cell_id = next(_cell_ids)
        self.operations = 0

    # ------------------------------------------------------------------
    def _round_trip(self, caller: int) -> Generator:
        if caller != self.home_worker:
            yield from self.node.transfer(
                caller, self.home_worker, _ATOMIC_BYTES, TransactionType.SYNC
            )
        yield Timeout(_ATOMIC_ALU_NS)
        if caller != self.home_worker:
            yield from self.node.transfer(
                self.home_worker, caller, _ATOMIC_BYTES, TransactionType.SYNC
            )

    def load(self, caller: int) -> Generator:
        """Atomic read; returns the value."""
        yield from self._round_trip(caller)
        self.operations += 1
        return self.value

    def fetch_add(self, caller: int, delta: int) -> Generator:
        """Atomic add; returns the *previous* value."""
        yield from self._round_trip(caller)
        old, self.value = self.value, self.value + delta
        self.operations += 1
        return old

    def compare_and_swap(self, caller: int, expected: int, desired: int) -> Generator:
        """CAS; returns (success, observed_value)."""
        yield from self._round_trip(caller)
        self.operations += 1
        if self.value == expected:
            self.value = desired
            return True, expected
        return False, self.value

    def store(self, caller: int, value: int) -> Generator:
        yield from self._round_trip(caller)
        self.value = value
        self.operations += 1
        return value


class UnimemLock:
    """A test-and-test-and-set spinlock on an :class:`AtomicCell`.

    Spinning remotely costs real SYNC traffic every probe, so the stats
    expose how contention turns into interconnect load.
    """

    def __init__(
        self,
        node: ComputeNode,
        home_worker: int,
        backoff_ns: float = 50.0,
        max_backoff_ns: float = 3200.0,
    ) -> None:
        if backoff_ns <= 0 or max_backoff_ns < backoff_ns:
            raise ValueError("need 0 < backoff <= max_backoff")
        self.cell = AtomicCell(node, home_worker, initial=0)
        self.backoff_ns = backoff_ns
        self.max_backoff_ns = max_backoff_ns
        self.acquisitions = 0
        self.spins = 0
        self._holder: Optional[int] = None

    @property
    def held(self) -> bool:
        return self._holder is not None

    @property
    def holder(self) -> Optional[int]:
        return self._holder

    def acquire(self, caller: int) -> Generator:
        """Spin (with exponential backoff) until the lock is ours."""
        backoff = self.backoff_ns
        while True:
            ok, _ = yield from self.cell.compare_and_swap(caller, 0, 1)
            if ok:
                self._holder = caller
                self.acquisitions += 1
                return self
            self.spins += 1
            yield Timeout(backoff)
            backoff = min(backoff * 2, self.max_backoff_ns)

    def release(self, caller: int) -> Generator:
        if self._holder != caller:
            raise RuntimeError(
                f"worker {caller} releasing a lock held by {self._holder}"
            )
        self._holder = None
        yield from self.cell.store(caller, 0)
        return None


class UnimemBarrier:
    """A sense-reversing centralized barrier.

    Arrivals fetch-add a counter at the home; the last arrival flips the
    sense and wakes everyone (one interrupt-class message per waiter --
    cheaper than remote spinning).
    """

    def __init__(self, node: ComputeNode, home_worker: int, parties: int) -> None:
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.node = node
        self.parties = parties
        self.counter = AtomicCell(node, home_worker, initial=0)
        self.generation = 0
        self._waiters: List[Tuple[int, Signal]] = []

    def arrive(self, caller: int) -> Generator:
        """Block until all parties arrived; returns the generation."""
        my_generation = self.generation
        arrived = yield from self.counter.fetch_add(caller, 1)
        if arrived + 1 == self.parties:
            # last arrival: reset and release everyone
            self.counter.value = 0
            self.generation += 1
            waiters, self._waiters = self._waiters, []
            for waiter_id, sig in waiters:
                yield from self.node.transfer(
                    self.counter.home_worker,
                    waiter_id,
                    8,
                    TransactionType.INTERRUPT,
                )
                sig.succeed(self.generation)
            return self.generation
        sig = Signal(self.node.sim)
        self._waiters.append((caller, sig))
        generation = yield sig
        assert my_generation < self.generation
        return generation
