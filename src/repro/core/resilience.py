"""Resilience through reconfiguration.

Section 2: "To further increase energy efficiency, as well as **to
provide resilience**, the Workers employ reconfigurable accelerators."
A fabric region that develops a fault is not a lost machine: the
middleware blanks it, marks it out of the floorplan, and reloads the
affected module into another region -- possibly on another Worker, since
UNILOGIC lets any Worker use any block.

:class:`FaultInjector` breaks regions (and whole Workers) at simulated
times; :class:`RecoveryManager` watches for broken regions and performs
the reload, recording time-to-recover and service continuity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.core.compute_node import ComputeNode
from repro.core.unilogic import UnilogicDomain
from repro.fabric.region import Region, RegionState
from repro.sim import Timeout


@dataclass
class FaultRecord:
    """One injected fault and its recovery outcome.

    ``failure_reason`` is set when recovery was attempted and gave up:
    ``"no_variant"`` (the module library has no bitstream for the lost
    function) or ``"no_region"`` (no surviving region anywhere in the
    UNILOGIC domain can host it) -- so chaos experiments can count and
    classify unrecoverable faults instead of inferring them.
    """

    worker_id: int
    region_id: int
    function: Optional[str]
    injected_at: float
    recovered_at: Optional[float] = None
    recovery_worker: Optional[int] = None
    failure_reason: Optional[str] = None

    @property
    def recovery_ns(self) -> Optional[float]:
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.injected_at

    @property
    def unrecovered(self) -> bool:
        return self.failure_reason is not None


class FaultInjector:
    """Breaks fabric regions at chosen simulated times."""

    def __init__(self, node: ComputeNode) -> None:
        self.node = node
        self.failed: Set[Tuple[int, int]] = set()   # (worker, region)
        self.records: List[FaultRecord] = []

    def is_failed(self, worker_id: int, region_id: int) -> bool:
        return (worker_id, region_id) in self.failed

    def inject_region_fault(self, worker_id: int, region_id: int) -> FaultRecord:
        """Break one region *now*: whatever module it held is lost."""
        worker = self.node.worker(worker_id)
        if not 0 <= region_id < len(worker.fabric):
            raise ValueError(f"worker {worker_id} has no region {region_id}")
        key = (worker_id, region_id)
        if key in self.failed:
            raise ValueError(f"region {key} already failed")
        region = worker.fabric.regions[region_id]
        record = FaultRecord(
            worker_id=worker_id,
            region_id=region_id,
            function=region.function,
            injected_at=self.node.sim.now,
        )
        # the region is dead: blank it and remove it from service
        worker.reconfig.unload(region)
        region.state = RegionState.LOADING  # never READY/EMPTY again
        self.failed.add(key)
        self.records.append(record)
        return record

    def inject_worker_fault(self, worker_id: int) -> List[FaultRecord]:
        """Break every region of one Worker (board-level fault)."""
        worker = self.node.worker(worker_id)
        return [
            self.inject_region_fault(worker_id, r.region_id)
            for r in worker.fabric.regions
            if not self.is_failed(worker_id, r.region_id)
        ]

    def schedule_region_fault(self, delay_ns: float, worker_id: int, region_id: int) -> None:
        self.node.sim.schedule(
            delay_ns, lambda: self.inject_region_fault(worker_id, region_id)
        )


class RecoveryManager:
    """Reloads modules lost to faults into surviving regions.

    Recovery policy: prefer a free region on the same Worker, then any
    Worker in the UNILOGIC domain (the paper's accelerator-migration
    virtualization feature doing double duty as repair).
    """

    def __init__(
        self,
        node: ComputeNode,
        unilogic: UnilogicDomain,
        library,
        injector: FaultInjector,
        check_period_ns: float = 50_000.0,
        telemetry=None,
    ) -> None:
        if check_period_ns <= 0:
            raise ValueError("check period must be positive")
        self.node = node
        self.unilogic = unilogic
        self.library = library
        self.injector = injector
        self.check_period_ns = check_period_ns
        self.telemetry = telemetry if telemetry is not None and telemetry.enabled else None
        self.recoveries = 0
        self.unrecoverable: List[FaultRecord] = []
        self._running = True

    def stop(self) -> None:
        self._running = False

    @property
    def failed_recoveries(self) -> int:
        """Recoveries that gave up (no variant / no spare region anywhere)."""
        return len(self.unrecoverable)

    # ------------------------------------------------------------------
    def _pending(self) -> List[FaultRecord]:
        return [
            r
            for r in self.injector.records
            if r.recovered_at is None
            and r.function is not None
            and r.failure_reason is None
        ]

    def _mark_recovered(self, record: FaultRecord, worker_id: int) -> None:
        record.recovered_at = self.node.sim.now
        record.recovery_worker = worker_id
        self.recoveries += 1
        if self.telemetry is not None:
            self.telemetry.event(
                "resilience.recovered",
                f"{self.node.name}.resilience",
                function=record.function,
                from_worker=record.worker_id,
                to_worker=worker_id,
                recovery_ns=record.recovery_ns,
            )

    def _mark_unrecoverable(self, record: FaultRecord, reason: str) -> None:
        record.failure_reason = reason
        self.unrecoverable.append(record)
        if self.telemetry is not None:
            self.telemetry.event(
                "resilience.unrecoverable",
                f"{self.node.name}.resilience",
                function=record.function,
                worker=record.worker_id,
                region=record.region_id,
                reason=reason,
            )

    def recover_one(self, record: FaultRecord) -> Generator:
        """Reload the lost function somewhere; returns the region or None.

        Failed recoveries are recorded on the :class:`FaultRecord`
        (``failure_reason``) and counted in :attr:`failed_recoveries`.
        """
        # already re-hosted elsewhere (e.g. another replica survived)?
        existing = self.unilogic.hosting_regions(record.function)
        if existing:
            host, region = existing[0]
            self._mark_recovered(record, host)
            return region
        module = self.library.best_variant(record.function)
        if module is None:
            self._mark_unrecoverable(record, "no_variant")
            return None
        # same worker first, then the rest of the domain
        order = [record.worker_id] + [
            w.worker_id for w in self.node.workers if w.worker_id != record.worker_id
        ]
        for worker_id in order:
            worker = self.node.worker(worker_id)
            candidate = worker.fabric.victim_region(module)
            if candidate is None:
                continue
            if self.injector.is_failed(worker_id, candidate.region_id):
                continue
            region = yield from worker.load_module(module, candidate)
            if region is not None:
                self._mark_recovered(record, worker_id)
                return region
        self._mark_unrecoverable(record, "no_region")
        return None

    def run(self) -> Generator:
        """Periodic repair loop (spawn as a simulation process)."""
        while self._running:
            yield Timeout(self.check_period_ns)
            if not self._running:
                return
            for record in self._pending():
                yield from self.recover_one(record)

    # ------------------------------------------------------------------
    def mean_recovery_ns(self) -> float:
        done = [r.recovery_ns for r in self.injector.records if r.recovery_ns is not None]
        return sum(done) / len(done) if done else 0.0

    def summary(self) -> dict:
        """Recovery outcome counts for chaos reports."""
        return {
            "recoveries": self.recoveries,
            "failed_recoveries": self.failed_recoveries,
            "failure_reasons": sorted(
                r.failure_reason for r in self.unrecoverable
            ),
            "mean_recovery_ns": self.mean_recovery_ns(),
        }
