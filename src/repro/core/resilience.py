"""Resilience through reconfiguration.

Section 2: "To further increase energy efficiency, as well as **to
provide resilience**, the Workers employ reconfigurable accelerators."
A fabric region that develops a fault is not a lost machine: the
middleware blanks it, marks it out of the floorplan, and reloads the
affected module into another region -- possibly on another Worker, since
UNILOGIC lets any Worker use any block.

:class:`FaultInjector` breaks regions (and whole Workers) at simulated
times; :class:`RecoveryManager` watches for broken regions and performs
the reload, recording time-to-recover and service continuity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.core.compute_node import ComputeNode
from repro.core.unilogic import UnilogicDomain
from repro.fabric.region import Region, RegionState
from repro.sim import Timeout


@dataclass
class FaultRecord:
    """One injected fault and its recovery outcome."""

    worker_id: int
    region_id: int
    function: Optional[str]
    injected_at: float
    recovered_at: Optional[float] = None
    recovery_worker: Optional[int] = None

    @property
    def recovery_ns(self) -> Optional[float]:
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.injected_at


class FaultInjector:
    """Breaks fabric regions at chosen simulated times."""

    def __init__(self, node: ComputeNode) -> None:
        self.node = node
        self.failed: Set[Tuple[int, int]] = set()   # (worker, region)
        self.records: List[FaultRecord] = []

    def is_failed(self, worker_id: int, region_id: int) -> bool:
        return (worker_id, region_id) in self.failed

    def inject_region_fault(self, worker_id: int, region_id: int) -> FaultRecord:
        """Break one region *now*: whatever module it held is lost."""
        worker = self.node.worker(worker_id)
        if not 0 <= region_id < len(worker.fabric):
            raise ValueError(f"worker {worker_id} has no region {region_id}")
        key = (worker_id, region_id)
        if key in self.failed:
            raise ValueError(f"region {key} already failed")
        region = worker.fabric.regions[region_id]
        record = FaultRecord(
            worker_id=worker_id,
            region_id=region_id,
            function=region.function,
            injected_at=self.node.sim.now,
        )
        # the region is dead: blank it and remove it from service
        worker.reconfig.unload(region)
        region.state = RegionState.LOADING  # never READY/EMPTY again
        self.failed.add(key)
        self.records.append(record)
        return record

    def inject_worker_fault(self, worker_id: int) -> List[FaultRecord]:
        """Break every region of one Worker (board-level fault)."""
        worker = self.node.worker(worker_id)
        return [
            self.inject_region_fault(worker_id, r.region_id)
            for r in worker.fabric.regions
            if not self.is_failed(worker_id, r.region_id)
        ]

    def schedule_region_fault(self, delay_ns: float, worker_id: int, region_id: int) -> None:
        self.node.sim.schedule(
            delay_ns, lambda: self.inject_region_fault(worker_id, region_id)
        )


class RecoveryManager:
    """Reloads modules lost to faults into surviving regions.

    Recovery policy: prefer a free region on the same Worker, then any
    Worker in the UNILOGIC domain (the paper's accelerator-migration
    virtualization feature doing double duty as repair).
    """

    def __init__(
        self,
        node: ComputeNode,
        unilogic: UnilogicDomain,
        library,
        injector: FaultInjector,
        check_period_ns: float = 50_000.0,
    ) -> None:
        if check_period_ns <= 0:
            raise ValueError("check period must be positive")
        self.node = node
        self.unilogic = unilogic
        self.library = library
        self.injector = injector
        self.check_period_ns = check_period_ns
        self.recoveries = 0
        self.unrecoverable: List[FaultRecord] = []
        self._running = True

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def _pending(self) -> List[FaultRecord]:
        return [
            r
            for r in self.injector.records
            if r.recovered_at is None
            and r.function is not None
            and r not in self.unrecoverable
        ]

    def recover_one(self, record: FaultRecord) -> Generator:
        """Reload the lost function somewhere; returns the region or None."""
        # already re-hosted elsewhere (e.g. another replica survived)?
        existing = self.unilogic.hosting_regions(record.function)
        if existing:
            host, region = existing[0]
            record.recovered_at = self.node.sim.now
            record.recovery_worker = host
            self.recoveries += 1
            return region
        module = self.library.best_variant(record.function)
        if module is None:
            self.unrecoverable.append(record)
            return None
        # same worker first, then the rest of the domain
        order = [record.worker_id] + [
            w.worker_id for w in self.node.workers if w.worker_id != record.worker_id
        ]
        for worker_id in order:
            worker = self.node.worker(worker_id)
            candidate = worker.fabric.victim_region(module)
            if candidate is None:
                continue
            if self.injector.is_failed(worker_id, candidate.region_id):
                continue
            region = yield from worker.load_module(module, candidate)
            if region is not None:
                record.recovered_at = self.node.sim.now
                record.recovery_worker = worker_id
                self.recoveries += 1
                return region
        self.unrecoverable.append(record)
        return None

    def run(self) -> Generator:
        """Periodic repair loop (spawn as a simulation process)."""
        while self._running:
            yield Timeout(self.check_period_ns)
            if not self._running:
                return
            for record in self._pending():
                yield from self.recover_one(record)

    # ------------------------------------------------------------------
    def mean_recovery_ns(self) -> float:
        done = [r.recovery_ns for r in self.injector.records if r.recovery_ns is not None]
        return sum(done) / len(done) if done else 0.0
