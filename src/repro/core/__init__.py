"""The ECOSCALE core: Workers, Compute Nodes, UNILOGIC and the runtime.

This package is the paper's contribution proper, assembled from the
substrate packages:

- :class:`Worker` (Fig. 4): CPU + cache + DRAM + reconfigurable block +
  dual-stage SMMU + virtualization block.
- :class:`ComputeNode` (Fig. 3): a PGAS sub-system of Workers on a
  multi-layer interconnect sharing a UNIMEM address space.
- :class:`UnilogicDomain`: shared partitioned reconfigurable resources --
  any Worker can invoke any Reconfigurable block in the domain; local
  blocks cache coherently (ACE), remote ones run cache-disabled
  (ACE-lite).
- :class:`Machine` (Fig. 1/3): Compute Nodes joined by an MPI-style
  inter-node network.
- :mod:`repro.core.runtime` (Fig. 5): schedulers, execution history,
  prediction models, the reconfiguration daemon and the execution engine.
- :mod:`repro.core.middleware`: the partial-reconfiguration toolset and
  the SW-HW communication library.
"""

from repro.core.compute_node import ComputeNode, ComputeNodeParams
from repro.core.machine import Machine, MachineParams
from repro.core.resilience import FaultInjector, FaultRecord, RecoveryManager
from repro.core.sync import AtomicCell, UnimemBarrier, UnimemLock
from repro.core.unilogic import AcceleratorAccess, UnilogicDomain
from repro.core.worker import FunctionRegistry, Worker, WorkerParams

__all__ = [
    "AcceleratorAccess",
    "AtomicCell",
    "ComputeNode",
    "ComputeNodeParams",
    "FaultInjector",
    "FaultRecord",
    "RecoveryManager",
    "FunctionRegistry",
    "Machine",
    "MachineParams",
    "UnilogicDomain",
    "UnimemBarrier",
    "UnimemLock",
    "Worker",
    "WorkerParams",
]
