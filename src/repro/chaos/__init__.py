"""Machine-wide fault injection (chaos testing) for the simulated machine.

ECOSCALE argues resilience must be a first-class property of an exascale
machine ("to provide resilience, the Workers employ reconfigurable
accelerators", Section 2).  This package is the adversary that claim is
tested against: a :class:`ChaosController` injects crash-stop and
transient Worker failures, link degradation/outages and MPI message
loss from a seeded deterministic plan, and
:func:`run_chaos_experiment` wraps a baseline-vs-faulted pair of runs
into a :class:`ChaosReport` with a result-integrity verdict.
"""

from repro.chaos.controller import (
    ChaosConfig,
    ChaosController,
    PlannedFault,
)
from repro.chaos.experiment import (
    CHAOS_PRESETS,
    ChaosPreset,
    ChaosReport,
    JobChaosVerdict,
    MultiJobChaosReport,
    graph_signature,
    run_chaos_experiment,
    run_multi_job_chaos_experiment,
)

__all__ = [
    "CHAOS_PRESETS",
    "ChaosConfig",
    "ChaosController",
    "ChaosPreset",
    "ChaosReport",
    "JobChaosVerdict",
    "MultiJobChaosReport",
    "PlannedFault",
    "graph_signature",
    "run_chaos_experiment",
    "run_multi_job_chaos_experiment",
]
