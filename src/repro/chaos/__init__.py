"""Machine-wide fault injection (chaos testing) for the simulated machine.

ECOSCALE argues resilience must be a first-class property of an exascale
machine ("to provide resilience, the Workers employ reconfigurable
accelerators", Section 2).  This package is the adversary that claim is
tested against: a :class:`ChaosController` injects crash-stop and
transient Worker failures, link degradation/outages and MPI message
loss from a seeded deterministic plan, and
:func:`run_chaos_experiment` wraps a baseline-vs-faulted pair of runs
into a :class:`ChaosReport` with a result-integrity verdict.

Correlated failures ride on the same controller: a
:class:`~repro.chaos.domains.DomainTree` models the enclosure hierarchy
(node -> blade -> rack -> PSU) so one seeded event takes down a whole
subtree at once, and :mod:`repro.chaos.checkpoint_experiment` closes the
loop -- kill a failure domain mid-run, restore from the latest snapshot
(:mod:`repro.core.runtime.checkpoint`) and verify only lost work was
replayed, plus the MTBF x checkpoint-interval sweep that validates
Daly's optimum cadence.
"""

from repro.chaos.checkpoint_experiment import (
    CheckpointRestoreReport,
    CheckpointSweepReport,
    JobRestoreVerdict,
    restore_from_snapshot,
    run_checkpoint_interval_sweep,
    run_checkpoint_restore_experiment,
    workload_spec,
)
from repro.chaos.controller import (
    ChaosConfig,
    ChaosController,
    PlannedFault,
)
from repro.chaos.domains import (
    TIERS,
    DomainChaosConfig,
    DomainTree,
    FailureDomain,
    build_domain_tree,
)
from repro.chaos.experiment import (
    CHAOS_PRESETS,
    ChaosPreset,
    ChaosReport,
    JobChaosVerdict,
    MultiJobChaosReport,
    graph_signature,
    run_chaos_experiment,
    run_multi_job_chaos_experiment,
)

__all__ = [
    "CHAOS_PRESETS",
    "ChaosConfig",
    "ChaosController",
    "ChaosPreset",
    "ChaosReport",
    "CheckpointRestoreReport",
    "CheckpointSweepReport",
    "DomainChaosConfig",
    "DomainTree",
    "FailureDomain",
    "JobChaosVerdict",
    "JobRestoreVerdict",
    "MultiJobChaosReport",
    "PlannedFault",
    "TIERS",
    "build_domain_tree",
    "graph_signature",
    "restore_from_snapshot",
    "run_chaos_experiment",
    "run_checkpoint_interval_sweep",
    "run_checkpoint_restore_experiment",
    "run_multi_job_chaos_experiment",
    "workload_spec",
]
