"""Checkpoint/restart chaos experiments: survive what retry cannot.

Per-task retry (:mod:`repro.core.runtime.faults`) handles single-Worker
deaths; a **rack-level correlated failure** that takes down every Worker
at once leaves nothing to retry on.  This module closes the loop around
:mod:`repro.core.runtime.checkpoint` with two experiments:

- :func:`run_checkpoint_restore_experiment` -- the acceptance scenario:
  run a multi-job workload with periodic checkpointing, kill one failure
  domain mid-run (the whole rack: a correlated, unrecoverable outage),
  abandon the crashed incarnation, then rebuild a fresh machine from the
  latest surviving snapshot (:func:`restore_from_snapshot`) and replay
  *only the lost work*.  The report's per-job verdicts check that every
  task of the original workload was accounted for -- completed before
  the snapshot (skipped on restore) or re-executed after it.

- :func:`run_checkpoint_interval_sweep` -- the tuning experiment: sweep
  MTBF x checkpoint-interval and report goodput / availability / wasted
  work per cell.  One real DES run measures the checkpoint cost; a
  seeded renewal model (common random numbers across intervals, so the
  argmax is stable) then shows goodput peaking at Daly's optimum
  interval -- the validation that the ``mode="daly"`` policy picks the
  right cadence.

Both experiments are pure functions of their seed and knobs, like every
other chaos experiment in this package.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.taskgraph import make_layered_dag
from repro.chaos.controller import ChaosController
from repro.chaos.domains import DomainTree, build_domain_tree
from repro.chaos.experiment import CHAOS_PRESETS, graph_signature
from repro.core.compute_node import ComputeNode
from repro.core.runtime import (
    ExecutionEngine,
    FaultTolerancePolicy,
    JobManager,
)
from repro.core.runtime.checkpoint import (
    CheckpointManager,
    CheckpointPolicy,
    Snapshot,
    SnapshotStore,
    daly_interval_ns,
)
from repro.presets import compiled_suite, node_preset
from repro.sim import Simulator

#: the task functions every checkpointable workload draws from (recorded
#: in the snapshot's workload block so restore rebuilds identical graphs)
WORKLOAD_FUNCTIONS = ("saxpy", "stencil5", "montecarlo")


# ----------------------------------------------------------------------
# workload metadata: everything restore needs to rebuild the run
# ----------------------------------------------------------------------


def workload_spec(
    preset_name: str,
    seed: int = 0,
    policies: Tuple[str, ...] = ("greedy-hw", "energy"),
    max_variants: int = 1,
) -> Dict[str, Any]:
    """The snapshot's ``workload`` block: a chaos preset's job mix in
    self-contained form (restore rebuilds the machine from this alone)."""
    if preset_name not in CHAOS_PRESETS:
        known = ", ".join(sorted(CHAOS_PRESETS))
        raise KeyError(
            f"unknown chaos preset {preset_name!r}; choose from: {known}"
        )
    preset = CHAOS_PRESETS[preset_name]
    return {
        "kind": "chaos-jobs",
        "preset": preset_name,
        "node": preset.node,
        "layers": preset.layers,
        "width": preset.width,
        "graph_seed": preset.graph_seed,
        "functions": list(WORKLOAD_FUNCTIONS),
        "policies": list(policies),
        "priorities": [2 if i == 0 else 1 for i in range(len(policies))],
        "max_variants": int(max_variants),
        "seed": int(seed),
    }


def _build_machine(
    workload: Dict[str, Any],
    fault_tolerance: Optional[FaultTolerancePolicy] = None,
    telemetry=None,
    compiled=None,
    start_ns: float = 0.0,
):
    """Fresh (sim, node, engine, manager) for a workload spec.  A
    restore passes ``start_ns`` so the new incarnation's clock resumes
    at the snapshot time instead of replaying history from zero."""
    registry, library = (
        compiled
        if compiled is not None
        else compiled_suite(max_variants=workload["max_variants"])
    )
    sim = Simulator()
    if start_ns > 0.0:
        sim.warp_to(start_ns)
    node = ComputeNode(sim, node_preset(workload["node"]))
    engine = ExecutionEngine(
        node,
        registry,
        library,
        use_daemon=True,
        daemon_period_ns=100_000.0,
        fault_tolerance=fault_tolerance,
        telemetry=telemetry,
    )
    manager = JobManager(engine)
    return sim, node, engine, manager


def _workload_graph(workload: Dict[str, Any], index: int, num_workers: int):
    """Job ``index``'s graph, deterministically (seed = graph_seed+i,
    the same derivation the multi-job chaos experiment uses)."""
    return make_layered_dag(
        layers=workload["layers"],
        width=workload["width"],
        num_workers=num_workers,
        functions=tuple(workload["functions"]),
        seed=workload["graph_seed"] + index,
    )


def _signature_rows(graph) -> List[List[Any]]:
    return [list(row) for row in graph_signature(graph)]


def submit_workload(manager: JobManager, workload: Dict[str, Any]):
    """Submit the workload's job mix fresh (no prior progress)."""
    handles = []
    num_workers = len(manager.engine.node)
    for i, policy in enumerate(workload["policies"]):
        graph = _workload_graph(workload, i, num_workers)
        handles.append(
            manager.submit_job(
                graph, policy=policy, priority=workload["priorities"][i]
            )
        )
    return handles


# ----------------------------------------------------------------------
# restore: snapshot -> fresh machine -> replay only lost work
# ----------------------------------------------------------------------


def restore_from_snapshot(
    snapshot: Snapshot,
    fault_tolerance: Optional[FaultTolerancePolicy] = None,
    telemetry=None,
    compiled=None,
):
    """Rebuild the run a snapshot describes and resume it.

    Returns ``(manager, handles)`` with every job resubmitted: the
    simulator's clock is warped to the snapshot time, each graph is
    rebuilt from the workload metadata and *verified against the
    snapshot's per-job signature* (restoring onto the wrong workload is
    an error, not silent corruption), and each job carries its
    ``completed`` index set so the drivers dispatch only the lost
    frontier.  ``manager.run()`` then finishes the workload.
    """
    workload = snapshot.workload
    if workload.get("kind") != "chaos-jobs":
        raise ValueError(
            f"cannot restore workload kind {workload.get('kind')!r}"
        )
    _, _, _, manager = _build_machine(
        workload,
        fault_tolerance=fault_tolerance,
        telemetry=telemetry,
        compiled=compiled,
        start_ns=snapshot.taken_at_ns,
    )
    num_workers = len(manager.engine.node)
    handles = []
    for i, progress in enumerate(sorted(snapshot.jobs, key=lambda j: j.job_id)):
        graph = _workload_graph(workload, i, num_workers)
        if progress.signature and _signature_rows(graph) != progress.signature:
            raise ValueError(
                f"job {progress.job_id}: rebuilt graph does not match the "
                "snapshot's workload signature (wrong preset or seed?)"
            )
        handles.append(
            manager.submit_job(
                graph,
                policy=progress.policy,
                priority=progress.priority,
                dataflow=progress.dataflow,
                completed=frozenset(progress.completed),
            )
        )
    return manager, handles


# ----------------------------------------------------------------------
# the acceptance experiment: rack kill -> abandon -> restore -> verdict
# ----------------------------------------------------------------------


@dataclass
class JobRestoreVerdict:
    """Did one job's work survive the outage end to end?"""

    job_id: int
    policy: str
    total_tasks: int
    checkpointed: int            # completed before the snapshot (skipped)
    replayed: int                # re-executed by the restored incarnation
    tasks_unrecovered: int
    workload_match: bool

    @property
    def integrity_ok(self) -> bool:
        return (
            self.workload_match
            and self.tasks_unrecovered == 0
            and self.checkpointed + self.replayed == self.total_tasks
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "policy": self.policy,
            "total_tasks": self.total_tasks,
            "checkpointed": self.checkpointed,
            "replayed": self.replayed,
            "tasks_unrecovered": self.tasks_unrecovered,
            "integrity_ok": self.integrity_ok,
        }


@dataclass
class CheckpointRestoreReport:
    """Verdict of one kill-and-restore experiment."""

    preset: str
    seed: int
    domain: str
    interval_ns: float
    baseline_makespan_ns: float
    baseline_tasks: int
    kill_ns: float
    abandoned_ns: float
    domain_workers: List[int] = field(default_factory=list)
    snapshots_taken: int = 0
    snapshot_seq: Optional[int] = None
    snapshot_at_ns: Optional[float] = None
    tasks_checkpointed: int = 0
    restored_makespan_ns: float = 0.0
    verdicts: List[JobRestoreVerdict] = field(default_factory=list)

    @property
    def integrity_ok(self) -> bool:
        return bool(self.verdicts) and all(
            v.integrity_ok for v in self.verdicts
        )

    @property
    def lost_window_ns(self) -> float:
        """Simulated progress time the outage destroyed (snapshot to
        abandonment) -- the work the restore had to redo."""
        if self.snapshot_at_ns is None:
            return self.abandoned_ns
        return self.abandoned_ns - self.snapshot_at_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "preset": self.preset,
            "seed": self.seed,
            "domain": self.domain,
            "domain_workers": list(self.domain_workers),
            "interval_ns": self.interval_ns,
            "integrity_ok": self.integrity_ok,
            "baseline": {
                "makespan_ns": self.baseline_makespan_ns,
                "tasks": self.baseline_tasks,
            },
            "crash": {
                "kill_ns": self.kill_ns,
                "abandoned_ns": self.abandoned_ns,
                "snapshots_taken": self.snapshots_taken,
                "snapshot_seq": self.snapshot_seq,
                "snapshot_at_ns": self.snapshot_at_ns,
                "tasks_checkpointed": self.tasks_checkpointed,
                "lost_window_ns": self.lost_window_ns,
            },
            "restore": {
                "makespan_ns": self.restored_makespan_ns,
                "tasks_checkpointed": sum(v.checkpointed for v in self.verdicts),
                "tasks_replayed": sum(v.replayed for v in self.verdicts),
            },
            "jobs": [v.to_dict() for v in self.verdicts],
        }

    def events_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON of the experiment (CI determinism diffing)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def run_checkpoint_restore_experiment(
    preset_name: str = "mini",
    seed: int = 0,
    domain: str = "rack0",
    interval_ns: Optional[float] = None,
    kill_fraction: float = 0.45,
    abandon_fraction: float = 0.6,
    store_dir=None,
    telemetry=None,
    compiled=None,
) -> CheckpointRestoreReport:
    """Kill one failure domain mid-run, restore from the last snapshot.

    Three phases on identical machines:

    1. **baseline** -- the workload uninterrupted (pins down makespan,
       per-job task counts and workload signatures),
    2. **crash** -- the same workload with periodic checkpointing
       (default cadence: an eighth of the baseline makespan), a
       permanent correlated kill of ``domain`` at ``kill_fraction`` of
       the makespan, and abandonment of the crashed incarnation at
       ``abandon_fraction`` (rack-scale loss: nothing left to retry on),
    3. **restore** -- :func:`restore_from_snapshot` from the newest
       snapshot taken before the kill, run to completion.

    ``store_dir`` additionally persists every snapshot through a
    :class:`SnapshotStore` (the CLI's ``checkpoint save`` path).
    """
    if not 0.0 < kill_fraction < abandon_fraction:
        raise ValueError("need 0 < kill_fraction < abandon_fraction")
    workload = workload_spec(preset_name, seed=seed)
    preset = CHAOS_PRESETS[preset_name]
    if compiled is None:
        compiled = compiled_suite(max_variants=workload["max_variants"])

    # --- phase 1: uninterrupted baseline -------------------------------
    _, _, _, manager0 = _build_machine(workload, compiled=compiled)
    handles0 = submit_workload(manager0, workload)
    baseline = manager0.run()

    # --- phase 2: checkpointed run, domain kill, abandonment -----------
    ft = FaultTolerancePolicy(
        heartbeat_period_ns=preset.heartbeat_period_ns,
        max_attempts=preset.max_attempts,
    )
    if interval_ns is None:
        interval_ns = baseline.makespan_ns / 8.0
    sim, node, engine, manager = _build_machine(
        workload, fault_tolerance=ft, telemetry=telemetry, compiled=compiled
    )
    handles = submit_workload(manager, workload)
    ckpt = CheckpointManager(
        manager,
        CheckpointPolicy(interval_ns=interval_ns),
        store=SnapshotStore(store_dir) if store_dir is not None else None,
        workload=workload,
        telemetry=telemetry,
    )
    ckpt.start()
    tree = build_domain_tree(len(node.workers))
    target = tree.domain(domain)
    kill_ns = kill_fraction * baseline.makespan_ns
    abandon_ns = abandon_fraction * baseline.makespan_ns
    controller = ChaosController(sim, seed=seed, telemetry=telemetry)
    controller.fail_domain(engine, target, kill_ns, downtime_ns=None)
    controller.arm()
    sim.run(until=abandon_ns)        # the crashed incarnation ends here
    ckpt.stop()
    snapshot = ckpt.latest_before(kill_ns)
    if snapshot is None:
        raise RuntimeError(
            f"no snapshot survived before the kill at {kill_ns:.0f} ns "
            f"(interval {interval_ns:.0f} ns too long for this workload)"
        )

    # --- phase 3: restore from the snapshot, replay lost work ----------
    manager2, handles2 = restore_from_snapshot(
        snapshot, fault_tolerance=ft, telemetry=telemetry, compiled=compiled
    )
    restored = manager2.run()

    verdicts = []
    for h0, handle in zip(handles0, handles2):
        outcome = restored.job(handle.job_id)
        progress = snapshot.job(handle.job_id)
        verdicts.append(
            JobRestoreVerdict(
                job_id=handle.job_id,
                policy=handle.policy.name,
                total_tasks=len(h0.graph.tasks),
                # checkpointed comes from the *snapshot*, replayed from
                # the restored driver's skip counter: their sum matching
                # the total proves the driver skipped exactly the
                # snapshot's completed set, no more, no fewer
                checkpointed=len(progress.completed) if progress else 0,
                replayed=outcome.report.tasks - handle.tasks_skipped,
                tasks_unrecovered=outcome.report.tasks_unrecovered,
                workload_match=(
                    graph_signature(h0.graph) == graph_signature(handle.graph)
                ),
            )
        )
    return CheckpointRestoreReport(
        preset=preset_name,
        seed=seed,
        domain=domain,
        domain_workers=list(target.workers),
        interval_ns=interval_ns,
        baseline_makespan_ns=baseline.makespan_ns,
        baseline_tasks=baseline.tasks,
        kill_ns=kill_ns,
        abandoned_ns=abandon_ns,
        snapshots_taken=len(ckpt.snapshots),
        snapshot_seq=snapshot.seq,
        snapshot_at_ns=snapshot.taken_at_ns,
        tasks_checkpointed=snapshot.tasks_completed,
        restored_makespan_ns=restored.makespan_ns,
        verdicts=verdicts,
    )


# ----------------------------------------------------------------------
# the tuning experiment: MTBF x interval -> goodput, Daly validation
# ----------------------------------------------------------------------

#: geometric factor grid around the Daly optimum (1.0 = exactly Daly);
#: "within one sweep step" in the validation means one index on this grid
SWEEP_FACTORS = (0.25, 0.5, 0.71, 1.0, 1.41, 2.0, 4.0)


def _renewal_trial(
    work_ns: float,
    interval_ns: float,
    cost_ns: float,
    restart_ns: float,
    mtbf_ns: float,
    rng: random.Random,
) -> Dict[str, float]:
    """One seeded renewal-process trial: total wall time to finish
    ``work_ns`` of useful work, checkpointing every ``interval_ns``.

    Failures arrive exponentially (rate ``1/mtbf_ns``) and destroy the
    progress since the last checkpoint; every failure also costs
    ``restart_ns`` of rebuild time.  The final partial segment skips its
    checkpoint (nothing follows it worth protecting).
    """
    done = 0.0
    total = 0.0
    rework = 0.0
    overhead = 0.0
    restart_time = 0.0
    failures = 0
    time_to_fail = rng.expovariate(1.0 / mtbf_ns)
    while done < work_ns:
        seg = min(interval_ns, work_ns - done)
        ckpt = cost_ns if done + seg < work_ns else 0.0
        attempt = seg + ckpt
        if time_to_fail >= attempt:
            total += attempt
            overhead += ckpt
            time_to_fail -= attempt
            done += seg
        else:
            # mid-segment failure: the whole segment's progress is lost
            failures += 1
            rework += min(time_to_fail, seg)
            total += time_to_fail + restart_ns
            restart_time += restart_ns
            time_to_fail = rng.expovariate(1.0 / mtbf_ns)
    return {
        "total_ns": total,
        "rework_ns": rework,
        "overhead_ns": overhead,
        "restart_ns": restart_time,
        "failures": float(failures),
    }


@dataclass
class CheckpointSweepReport:
    """The MTBF x interval grid and its Daly verdict."""

    seed: int
    trials: int
    work_factor: float
    checkpoint_cost_ns: float
    restart_cost_ns: float
    measured_cost_ns: Optional[float]
    cells: List[Dict[str, Any]] = field(default_factory=list)
    optima: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def daly_validated(self) -> bool:
        """For every MTBF: measured-best interval within one sweep step
        of Daly's prediction (factor 1.0 on the grid)."""
        return bool(self.optima) and all(o["within_one_step"] for o in self.optima)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "trials": self.trials,
            "work_factor": self.work_factor,
            "checkpoint_cost_ns": self.checkpoint_cost_ns,
            "restart_cost_ns": self.restart_cost_ns,
            "measured_cost_ns": self.measured_cost_ns,
            "daly_validated": self.daly_validated,
            "factors": list(SWEEP_FACTORS),
            "cells": list(self.cells),
            "optima": list(self.optima),
        }

    def events_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON of the sweep (CI determinism diffing)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def run_checkpoint_interval_sweep(
    seed: int = 0,
    mtbf_list: Tuple[float, ...] = (2e6, 8e6, 32e6),
    trials: int = 48,
    work_factor: float = 25.0,
    checkpoint_cost_ns: Optional[float] = None,
    restart_cost_ns: float = 50_000.0,
    measure: bool = True,
    compiled=None,
) -> CheckpointSweepReport:
    """Sweep MTBF x checkpoint interval, validate the Daly optimum.

    When ``measure`` is on, one real DES run of the ``mini`` workload
    with checkpointing armed supplies the measured per-snapshot cost
    (the same number ``mode="daly"`` policies feed their formula);
    ``checkpoint_cost_ns`` overrides it.  Each grid cell then runs
    ``trials`` seeded renewal-process trials over ``work_factor x MTBF``
    of useful work.  Common random numbers: every interval of one
    (MTBF, trial) pair replays the *same* failure-time stream, so the
    per-MTBF argmax reflects the interval, not sampling noise.
    """
    measured: Optional[float] = None
    if measure and checkpoint_cost_ns is None:
        workload = workload_spec("mini", seed=seed)
        if compiled is None:
            compiled = compiled_suite(max_variants=workload["max_variants"])
        _, _, _, manager = _build_machine(workload, compiled=compiled)
        submit_workload(manager, workload)
        ckpt = CheckpointManager(
            manager, CheckpointPolicy(interval_ns=100_000.0), workload=workload
        )
        ckpt.start()
        manager.run()
        ckpt.stop()
        measured = ckpt.measured_cost_ns
    cost = (
        checkpoint_cost_ns
        if checkpoint_cost_ns is not None
        else (measured if measured else 5_000.0)
    )

    cells: List[Dict[str, Any]] = []
    optima: List[Dict[str, Any]] = []
    for mtbf in mtbf_list:
        daly = daly_interval_ns(cost, mtbf)
        work = work_factor * mtbf
        goodputs: List[float] = []
        for fi, factor in enumerate(SWEEP_FACTORS):
            interval = factor * daly
            acc = {k: 0.0 for k in
                   ("total_ns", "rework_ns", "overhead_ns", "restart_ns",
                    "failures")}
            for t in range(trials):
                rng = random.Random(f"sweep:{seed}:{mtbf}:{t}")
                trial = _renewal_trial(
                    work, interval, cost, restart_cost_ns, mtbf, rng
                )
                for k, v in trial.items():
                    acc[k] += v
            mean = {k: v / trials for k, v in acc.items()}
            goodput = work / mean["total_ns"]
            goodputs.append(goodput)
            cells.append(
                {
                    "mtbf_ns": mtbf,
                    "factor": factor,
                    "interval_ns": interval,
                    "goodput": round(goodput, 6),
                    "availability": round(
                        1.0 - mean["restart_ns"] / mean["total_ns"], 6
                    ),
                    "wasted_work_ns": round(
                        mean["rework_ns"] + mean["overhead_ns"], 3
                    ),
                    "mean_failures": round(mean["failures"], 3),
                }
            )
        best = max(range(len(SWEEP_FACTORS)), key=lambda i: goodputs[i])
        daly_idx = SWEEP_FACTORS.index(1.0)
        optima.append(
            {
                "mtbf_ns": mtbf,
                "daly_interval_ns": daly,
                "best_factor": SWEEP_FACTORS[best],
                "best_goodput": round(goodputs[best], 6),
                "daly_goodput": round(goodputs[daly_idx], 6),
                "within_one_step": abs(best - daly_idx) <= 1,
            }
        )
    return CheckpointSweepReport(
        seed=seed,
        trials=trials,
        work_factor=work_factor,
        checkpoint_cost_ns=cost,
        restart_cost_ns=restart_cost_ns,
        measured_cost_ns=measured,
        cells=cells,
        optima=optima,
    )
