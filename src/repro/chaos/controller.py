"""The machine-wide fault injector.

A :class:`ChaosController` schedules faults at every layer of the
simulated machine -- crash-stop and transient Worker failures (runtime),
link degradation and outages (interconnect), message loss/duplication
(MPI) -- from either an explicit plan or a seeded-random generator.

Determinism contract: the fault *plan* is a pure function of the chaos
seed and configuration (never of wall-clock or dict order), and every
in-flight random decision (link drops, message losses) draws from a
dedicated per-target RNG seeded from the master seed.  Same seed, same
machine, same workload => identical fault schedule and identical
recovery metrics -- the property the CI chaos smoke job diffs for.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.chaos.domains import DomainChaosConfig, DomainTree, FailureDomain, TIERS
from repro.interconnect.link import Link, LinkFault
from repro.mpi.comm import Communicator, MessageFaults
from repro.sim import Simulator


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of the seeded-random fault generator.

    Injection times are drawn uniformly inside ``window_ns`` (start,
    end) -- callers typically derive the window from a baseline run's
    makespan so faults land mid-graph.
    """

    worker_crashes: int = 1
    transient_fraction: float = 0.0     # fraction of crashes that heal
    worker_downtime_ns: float = 300_000.0
    link_degradations: int = 1
    link_drop_rate: float = 0.05
    link_latency_multiplier: float = 4.0
    link_outage_ns: float = 0.0
    link_duration_ns: Optional[float] = None   # None = degraded until the end
    mpi_drop_rate: float = 0.0
    mpi_duplicate_rate: float = 0.0
    window_ns: tuple = (100_000.0, 500_000.0)

    def __post_init__(self) -> None:
        if self.worker_crashes < 0 or self.link_degradations < 0:
            raise ValueError("fault counts must be non-negative")
        if not 0.0 <= self.transient_fraction <= 1.0:
            raise ValueError("transient fraction must be in [0, 1]")
        start, end = self.window_ns
        if start < 0 or end < start:
            raise ValueError(f"invalid injection window {self.window_ns}")


@dataclass
class PlannedFault:
    """One scheduled fault: what, where, when (plus its apply thunk)."""

    at_ns: float
    layer: str          # "worker" | "link" | "mpi" | "domain"
    kind: str           # "crash-stop" | "transient" | "degrade" | "restore" | "lossy"
    target: str
    params: Dict[str, Any] = field(default_factory=dict)
    apply: Optional[Callable[[], None]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at_ns": self.at_ns,
            "layer": self.layer,
            "kind": self.kind,
            "target": self.target,
            "params": {k: self.params[k] for k in sorted(self.params)},
        }


def seeded_node_plan(
    seed: int,
    node_id: int,
    num_workers: int,
    makespan_ns: float,
    window_fraction: tuple = (0.2, 0.6),
    crashes: int = 1,
    transient_fraction: float = 0.0,
    downtime_ns: float = 300_000.0,
) -> List[Dict[str, Any]]:
    """Worker-crash plan for one Compute Node of a sharded machine.

    Pure function of ``(seed, node_id)`` plus the node's shape: the RNG
    stream is ``f"{seed}:shard:{node_id}"``, so the plan is identical at
    any partition count and on any backend.  Mirrors
    :meth:`ChaosController.schedule_random`'s worker draws -- victims
    sampled leaving at least one survivor, times uniform inside the
    window, a per-crash transient draw -- but emits plain dicts so it
    can cross a process boundary.
    """
    rng = random.Random(f"{seed}:shard:{node_id}")
    lo, hi = window_fraction
    count = min(crashes, max(0, num_workers - 1))
    faults: List[Dict[str, Any]] = []
    for worker in rng.sample(range(num_workers), count):
        at_ns = rng.uniform(lo * makespan_ns, hi * makespan_ns)
        transient = rng.random() < transient_fraction
        faults.append(
            {
                "worker": worker,
                "at_ns": at_ns,
                "downtime_ns": downtime_ns if transient else None,
            }
        )
    faults.sort(key=lambda f: (f["at_ns"], f["worker"]))
    return faults


class ChaosController:
    """Schedules and injects faults across the whole simulated machine."""

    def __init__(
        self, sim: Simulator, seed: int = 0, telemetry=None, live: bool = False
    ) -> None:
        self.sim = sim
        self.seed = seed
        self.telemetry = telemetry if telemetry is not None and telemetry.enabled else None
        self.plan: List[PlannedFault] = []
        self.injected: List[Dict[str, Any]] = []
        self._armed = False
        # live controllers (the service daemon's) accept fault additions
        # after arm() and schedule them immediately; batch controllers
        # keep the build-plan-then-arm-once contract
        self.live = live
        # opt-in: a ServingGateway attached here is told to enter/exit
        # brownout around domain outages (degraded-mode serving while
        # the machine restores); None keeps chaos serving-agnostic
        self.gateway = None

    def attach_gateway(self, gateway) -> None:
        """Route domain-outage brownout signals into ``gateway``."""
        self.gateway = gateway

    # ------------------------------------------------------------------
    def _rng(self, stream: str) -> random.Random:
        """A dedicated RNG per (seed, stream) -- independent of call order."""
        return random.Random(f"{self.seed}:{stream}")

    def _record(self, fault: PlannedFault) -> None:
        entry = dict(fault.to_dict(), injected_at=self.sim.now)
        self.injected.append(entry)
        if self.telemetry is not None:
            self.telemetry.event(
                "chaos.inject",
                "chaos",
                layer=fault.layer,
                fault_kind=fault.kind,
                target=fault.target,
                **fault.params,
            )

    def _add(self, fault: PlannedFault) -> PlannedFault:
        if self._armed and not self.live:
            raise RuntimeError("chaos plan already armed; build the plan first")
        self.plan.append(fault)
        if self._armed:
            # online injection: the controller is live (a service-daemon
            # ``chaos`` command arrived mid-run), so schedule immediately
            # instead of waiting for an arm() that already happened
            self._schedule(fault)
        return fault

    def _schedule(self, fault: PlannedFault) -> None:
        def fire(f: PlannedFault = fault) -> None:
            f.apply()
            self._record(f)

        self.sim.schedule_at(max(fault.at_ns, self.sim.now), fire)

    # ------------------------------------------------------------------
    # explicit fault scheduling
    # ------------------------------------------------------------------
    def crash_worker(
        self,
        engine,
        worker_id: int,
        at_ns: float,
        downtime_ns: Optional[float] = None,
    ) -> PlannedFault:
        """Crash-stop Worker ``worker_id`` at ``at_ns``; a ``downtime_ns``
        makes the failure transient (the Worker heals and rejoins)."""
        transient = downtime_ns is not None
        fault = self._add(
            PlannedFault(
                at_ns=at_ns,
                layer="worker",
                kind="transient" if transient else "crash-stop",
                target=f"worker{worker_id}",
                params=(
                    {"downtime_ns": downtime_ns} if transient else {}
                ),
                apply=lambda: engine.crash_worker(worker_id, permanent=not transient),
            )
        )
        if transient:
            self._add(
                PlannedFault(
                    at_ns=at_ns + downtime_ns,
                    layer="worker",
                    kind="restore",
                    target=f"worker{worker_id}",
                    apply=lambda: engine.recover_worker(worker_id),
                )
            )
        return fault

    def degrade_link(
        self,
        link: Link,
        at_ns: float,
        drop_rate: float = 0.0,
        latency_multiplier: float = 1.0,
        outage_ns: float = 0.0,
        duration_ns: Optional[float] = None,
    ) -> PlannedFault:
        """Degrade ``link`` at ``at_ns``: lossy (``drop_rate``), slow
        (``latency_multiplier``) and/or hard-down for ``outage_ns``.
        ``duration_ns`` restores the link to healthy afterwards."""
        rng = self._rng(f"link:{link.name}")

        def apply() -> None:
            fault = LinkFault(
                rng=rng,
                drop_rate=drop_rate,
                latency_multiplier=latency_multiplier,
            )
            if outage_ns > 0:
                fault.down_until_ns = self.sim.now + outage_ns
            link.fault = fault

        fault = self._add(
            PlannedFault(
                at_ns=at_ns,
                layer="link",
                kind="degrade",
                target=link.name,
                params={
                    "drop_rate": drop_rate,
                    "latency_multiplier": latency_multiplier,
                    "outage_ns": outage_ns,
                },
                apply=apply,
            )
        )
        if duration_ns is not None:
            def restore() -> None:
                link.fault = None

            self._add(
                PlannedFault(
                    at_ns=at_ns + duration_ns,
                    layer="link",
                    kind="restore",
                    target=link.name,
                    apply=restore,
                )
            )
        return fault

    def lose_messages(
        self,
        comm: Communicator,
        at_ns: float,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        duration_ns: Optional[float] = None,
    ) -> PlannedFault:
        """Arm message loss/duplication on an MPI communicator."""
        rng = self._rng(f"mpi:{comm.name}")

        def apply() -> None:
            comm.faults = MessageFaults(
                rng=rng, drop_rate=drop_rate, duplicate_rate=duplicate_rate
            )

        fault = self._add(
            PlannedFault(
                at_ns=at_ns,
                layer="mpi",
                kind="lossy",
                target=comm.name,
                params={"drop_rate": drop_rate, "duplicate_rate": duplicate_rate},
                apply=apply,
            )
        )
        if duration_ns is not None:
            def restore() -> None:
                comm.faults = None

            self._add(
                PlannedFault(
                    at_ns=at_ns + duration_ns,
                    layer="mpi",
                    kind="restore",
                    target=comm.name,
                    apply=restore,
                )
            )
        return fault

    def fail_domain(
        self,
        engine,
        domain: FailureDomain,
        at_ns: float,
        downtime_ns: Optional[float] = None,
    ) -> PlannedFault:
        """One correlated fault: every Worker under ``domain`` crashes at
        ``at_ns`` in a single event (shared blade/rack/PSU going down).
        ``downtime_ns`` makes the outage transient -- the whole subtree
        heals and rejoins together.  An attached gateway (see
        :meth:`attach_gateway`) is browned out for the outage."""
        transient = downtime_ns is not None
        workers = list(domain.workers)
        params: Dict[str, Any] = {"tier": domain.tier, "workers": workers}
        if transient:
            params["downtime_ns"] = downtime_ns

        def apply() -> None:
            if self.gateway is not None:
                self.gateway.enter_brownout(f"domain:{domain.name}")
            for w in workers:
                engine.crash_worker(w, permanent=not transient)

        fault = self._add(
            PlannedFault(
                at_ns=at_ns,
                layer="domain",
                kind="transient" if transient else "crash-stop",
                target=domain.name,
                params=params,
                apply=apply,
            )
        )
        if transient:
            def restore() -> None:
                for w in workers:
                    engine.recover_worker(w)
                if self.gateway is not None:
                    self.gateway.exit_brownout()

            self._add(
                PlannedFault(
                    at_ns=at_ns + downtime_ns,
                    layer="domain",
                    kind="restore",
                    target=domain.name,
                    params={"tier": domain.tier, "workers": workers},
                    apply=restore,
                )
            )
        return fault

    # ------------------------------------------------------------------
    # seeded-random plan generation
    # ------------------------------------------------------------------
    def schedule_domain_random(
        self,
        engine,
        tree: DomainTree,
        config: DomainChaosConfig = DomainChaosConfig(),
    ) -> List[PlannedFault]:
        """A seeded correlated-failure plan over an enclosure tree.

        Each tier with an MTBF draws one exponential time-to-failure per
        domain from a dedicated ``domain:<name>`` RNG stream; draws
        landing inside the window become faults, earliest-first up to
        ``config.max_failures``.  Never takes the *whole* machine down
        permanently: with no downtime configured, candidate faults that
        would leave zero live Workers are dropped from the plan."""
        start, end = config.window_ns
        candidates: List[tuple] = []
        for tier in TIERS:
            mtbf = config.mtbf_for(tier)
            if mtbf is None:
                continue
            for domain in tree.domains(tier):
                rng = self._rng(f"domain:{domain.name}")
                at = start + rng.expovariate(1.0 / mtbf)
                if at <= end:
                    candidates.append((at, TIERS.index(tier), domain.name, domain))
        candidates.sort(key=lambda c: (c[0], c[1], c[2]))
        planned: List[PlannedFault] = []
        dead: set = set()
        num_workers = len(engine.schedulers)
        for at, _, _, domain in candidates[: config.max_failures]:
            if config.downtime_ns is None:
                if len(dead | set(domain.workers)) >= num_workers:
                    continue            # would kill the last survivor for good
                dead |= set(domain.workers)
            planned.append(
                self.fail_domain(
                    engine, domain, at_ns=at, downtime_ns=config.downtime_ns
                )
            )
        return planned

    def schedule_random(
        self,
        engine,
        links: List[Link],
        comm: Optional[Communicator] = None,
        config: ChaosConfig = ChaosConfig(),
    ) -> List[PlannedFault]:
        """Build a random-but-seeded fault plan over one engine's Workers,
        a set of links, and (optionally) an MPI communicator."""
        rng = self._rng("schedule")
        start, end = config.window_ns
        planned: List[PlannedFault] = []

        num_workers = len(engine.schedulers)
        crashes = min(config.worker_crashes, max(0, num_workers - 1))
        victims = rng.sample(range(num_workers), crashes) if crashes else []
        for worker_id in victims:
            at = rng.uniform(start, end)
            transient = rng.random() < config.transient_fraction
            planned.append(
                self.crash_worker(
                    engine,
                    worker_id,
                    at_ns=at,
                    downtime_ns=config.worker_downtime_ns if transient else None,
                )
            )

        degradations = min(config.link_degradations, len(links))
        chosen = rng.sample(range(len(links)), degradations) if degradations else []
        for index in chosen:
            at = rng.uniform(start, end)
            planned.append(
                self.degrade_link(
                    links[index],
                    at_ns=at,
                    drop_rate=config.link_drop_rate,
                    latency_multiplier=config.link_latency_multiplier,
                    outage_ns=config.link_outage_ns,
                    duration_ns=config.link_duration_ns,
                )
            )

        if comm is not None and (config.mpi_drop_rate or config.mpi_duplicate_rate):
            planned.append(
                self.lose_messages(
                    comm,
                    at_ns=rng.uniform(start, end),
                    drop_rate=config.mpi_drop_rate,
                    duplicate_rate=config.mpi_duplicate_rate,
                )
            )
        return planned

    # ------------------------------------------------------------------
    # arming and reporting
    # ------------------------------------------------------------------
    def arm(self) -> int:
        """Schedule every planned fault on the simulator.  Idempotent-safe:
        a plan can only be armed once.  A ``live=True`` controller stays
        open after arming: later fault additions schedule themselves
        immediately, which is how the service daemon injects plans
        mid-run; batch controllers keep refusing post-arm additions."""
        if self._armed:
            raise RuntimeError("chaos plan already armed")
        self._armed = True
        self.plan.sort(key=lambda f: (f.at_ns, f.layer, f.kind, f.target))
        for fault in self.plan:
            self._schedule(fault)
        return len(self.plan)

    def plan_json(self, indent: Optional[int] = None) -> str:
        """The fault schedule as canonical JSON (determinism diffing)."""
        return json.dumps(
            [f.to_dict() for f in sorted(
                self.plan, key=lambda f: (f.at_ns, f.layer, f.kind, f.target)
            )],
            indent=indent,
            sort_keys=True,
        )

    def events_json(self, indent: Optional[int] = None) -> str:
        """Faults actually injected, with injection timestamps."""
        return json.dumps(self.injected, indent=indent, sort_keys=True)

    @property
    def faults_planned(self) -> int:
        return len(self.plan)

    @property
    def faults_injected(self) -> int:
        return len(self.injected)
