"""End-to-end chaos experiments: baseline run, fault run, verdict.

A chaos experiment runs the same workload twice on identical machines:

1. **baseline** -- fault tolerance off, no faults (today's behaviour),
2. **chaos** -- the self-healing runtime armed, with a seeded fault
   plan injected mid-graph (the window is derived from the baseline
   makespan, so "mid-graph" is deterministic, not guessed).

The :class:`ChaosReport` then answers the only question that matters:
did every task still complete (result integrity), and what did survival
cost (makespan degradation, retries, work lost, time-to-recover)?
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.taskgraph import TaskGraph, make_layered_dag
from repro.chaos.controller import ChaosConfig, ChaosController
from repro.core.compute_node import ComputeNode
from repro.core.runtime import (
    ExecutionEngine,
    FaultTolerancePolicy,
    JobManager,
    MachineReport,
    RunReport,
)
from repro.presets import compiled_suite, node_preset
from repro.sim import Simulator


@dataclass(frozen=True)
class ChaosPreset:
    """One named chaos scenario: workload + machine + fault mix."""

    node: str                   # repro.presets.NODE_PRESETS key
    layers: int = 6
    width: int = 10
    graph_seed: int = 1
    worker_crashes: int = 1
    transient_fraction: float = 0.0
    worker_downtime_ns: float = 300_000.0
    link_degradations: int = 1
    link_drop_rate: float = 0.05
    link_latency_multiplier: float = 4.0
    window_fraction: Tuple[float, float] = (0.2, 0.6)
    heartbeat_period_ns: float = 20_000.0
    max_attempts: int = 4


#: The scenarios ``python -m repro chaos <preset>`` accepts.  ``mini``
#: is the CI smoke configuration (small and fast, transient crash so
#: the Worker also exercises the rejoin path); ``board`` is the
#: acceptance scenario from DESIGN.md -- kill one Worker mid-graph and
#: degrade one inter-Worker link on the default 4-Worker board.
CHAOS_PRESETS: Dict[str, ChaosPreset] = {
    "mini": ChaosPreset(
        node="mini", layers=4, width=6,
        transient_fraction=1.0, worker_downtime_ns=200_000.0,
        link_latency_multiplier=2.0,
    ),
    "board": ChaosPreset(node="board"),
    "board-transient": ChaosPreset(node="board", transient_fraction=1.0),
    "chassis": ChaosPreset(
        node="chassis", width=20, worker_crashes=2, link_degradations=2,
    ),
}


def graph_signature(graph: TaskGraph) -> Tuple:
    """A workload signature independent of global task-id allocation.

    ``make_layered_dag`` draws task ids from a process-global counter,
    so two identical graphs built in one process carry different ids;
    compare what the tasks *are* -- (function, items, layer) in layer
    order -- not how they were numbered.
    """
    return tuple(
        (task.function, task.items, depth)
        for depth, layer in enumerate(graph.layers())
        for task in layer
    )


@dataclass
class ChaosReport:
    """Verdict of one chaos experiment."""

    preset: str
    seed: int
    baseline: RunReport
    chaos: RunReport
    faults_planned: int
    faults_injected: int
    plan: List[Dict[str, Any]] = field(default_factory=list)
    injected: List[Dict[str, Any]] = field(default_factory=list)
    workload_match: bool = True

    @property
    def integrity_ok(self) -> bool:
        """Same workload, every task completed despite the faults."""
        return (
            self.workload_match
            and self.chaos.tasks == self.baseline.tasks
            and self.chaos.tasks_unrecovered == 0
        )

    @property
    def slowdown(self) -> float:
        """Chaos makespan relative to the fault-free baseline."""
        if self.baseline.makespan_ns <= 0:
            return 1.0
        return self.chaos.makespan_ns / self.baseline.makespan_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "preset": self.preset,
            "seed": self.seed,
            "integrity_ok": self.integrity_ok,
            "slowdown": self.slowdown,
            "faults_planned": self.faults_planned,
            "faults_injected": self.faults_injected,
            "plan": self.plan,
            "injected": self.injected,
            "baseline": {
                "makespan_ns": self.baseline.makespan_ns,
                "tasks": self.baseline.tasks,
            },
            "chaos": {
                "makespan_ns": self.chaos.makespan_ns,
                "tasks": self.chaos.tasks,
                "worker_failures": self.chaos.worker_failures,
                "tasks_retried": self.chaos.tasks_retried,
                "tasks_unrecovered": self.chaos.tasks_unrecovered,
                "mean_detection_ns": self.chaos.mean_detection_ns,
                "mean_recovery_ns": self.chaos.mean_recovery_ns,
                "work_lost_ns": self.chaos.work_lost_ns,
                "fabric_recoveries": self.chaos.fabric_recoveries,
                "fabric_recovery_failures": self.chaos.fabric_recovery_failures,
            },
        }

    def events_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON of the experiment (CI determinism diffing)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def _build_run(preset: ChaosPreset, registry, library, warm: bool = False,
               **engine_kwargs):
    """One fresh (sim, node, engine, graph) quadruple for the preset."""
    from repro.presets import build_preset_node

    sim = Simulator()
    node = build_preset_node(sim, preset.node, warm=warm)
    engine = ExecutionEngine(
        node, registry, library,
        use_daemon=True, daemon_period_ns=100_000.0,
        **engine_kwargs,
    )
    graph = make_layered_dag(
        layers=preset.layers, width=preset.width, num_workers=len(node),
        functions=("saxpy", "stencil5", "montecarlo"), seed=preset.graph_seed,
    )
    return sim, node, engine, graph


def run_chaos_experiment(
    preset_name: str,
    seed: int = 0,
    telemetry=None,
    compiled=None,
    warm_start=False,
) -> ChaosReport:
    """Run one named chaos scenario end to end.

    ``compiled`` lets callers pass a pre-built ``(registry, library)``
    pair (the HLS flow is the slow part); ``telemetry`` instruments the
    chaos run only.  ``warm_start`` (bool or saved-snapshot path) builds
    both machines through the template cache -- bit-identical reports,
    bring-up paid once.
    """
    if preset_name not in CHAOS_PRESETS:
        known = ", ".join(sorted(CHAOS_PRESETS))
        raise KeyError(f"unknown chaos preset {preset_name!r}; choose from: {known}")
    preset = CHAOS_PRESETS[preset_name]
    from repro.experiments import resolve_warm_start

    warm = resolve_warm_start(warm_start, preset.node)
    registry, library = compiled if compiled is not None else compiled_suite(max_variants=1)

    # --- baseline: fault tolerance off, no faults ----------------------
    _, _, baseline_engine, baseline_graph = _build_run(
        preset, registry, library, warm=warm
    )
    baseline_report = baseline_engine.run_graph(baseline_graph)

    # --- chaos: self-healing runtime + seeded fault plan ---------------
    policy = FaultTolerancePolicy(
        heartbeat_period_ns=preset.heartbeat_period_ns,
        max_attempts=preset.max_attempts,
    )
    sim, node, engine, graph = _build_run(
        preset, registry, library, warm=warm,
        fault_tolerance=policy, telemetry=telemetry,
    )
    lo, hi = preset.window_fraction
    config = ChaosConfig(
        worker_crashes=preset.worker_crashes,
        transient_fraction=preset.transient_fraction,
        worker_downtime_ns=preset.worker_downtime_ns,
        link_degradations=preset.link_degradations,
        link_drop_rate=preset.link_drop_rate,
        link_latency_multiplier=preset.link_latency_multiplier,
        window_ns=(lo * baseline_report.makespan_ns, hi * baseline_report.makespan_ns),
    )
    controller = ChaosController(sim, seed=seed, telemetry=telemetry)
    controller.schedule_random(engine, node.network.links, config=config)
    controller.arm()
    chaos_report = engine.run_graph(graph)

    return ChaosReport(
        preset=preset_name,
        seed=seed,
        baseline=baseline_report,
        chaos=chaos_report,
        faults_planned=controller.faults_planned,
        faults_injected=controller.faults_injected,
        plan=[f.to_dict() for f in controller.plan],
        injected=list(controller.injected),
        workload_match=(
            graph_signature(baseline_graph) == graph_signature(graph)
        ),
    )


# ----------------------------------------------------------------------
# multi-tenant chaos: concurrent jobs, per-job verdicts
# ----------------------------------------------------------------------


@dataclass
class JobChaosVerdict:
    """Did one tenant survive the chaos run intact?"""

    job_id: int
    policy: str
    priority: int
    tasks: int
    tasks_retried: int
    tasks_unrecovered: int
    latency_ns: float
    workload_match: bool

    @property
    def integrity_ok(self) -> bool:
        """Same workload, every task of *this job* completed."""
        return self.workload_match and self.tasks_unrecovered == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "policy": self.policy,
            "priority": self.priority,
            "tasks": self.tasks,
            "tasks_retried": self.tasks_retried,
            "tasks_unrecovered": self.tasks_unrecovered,
            "integrity_ok": self.integrity_ok,
        }


@dataclass
class MultiJobChaosReport:
    """Verdict of one multi-tenant chaos experiment: the machine-wide
    roll-up plus one integrity verdict per job."""

    preset: str
    seed: int
    baseline: MachineReport
    chaos: MachineReport
    verdicts: List[JobChaosVerdict]
    faults_planned: int
    faults_injected: int
    plan: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def integrity_ok(self) -> bool:
        return bool(self.verdicts) and all(v.integrity_ok for v in self.verdicts)

    @property
    def slowdown(self) -> float:
        if self.baseline.makespan_ns <= 0:
            return 1.0
        return self.chaos.makespan_ns / self.baseline.makespan_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "preset": self.preset,
            "seed": self.seed,
            "integrity_ok": self.integrity_ok,
            "slowdown": self.slowdown,
            "faults_planned": self.faults_planned,
            "faults_injected": self.faults_injected,
            "plan": self.plan,
            "fairness_index": self.chaos.fairness_index(),
            "jobs": [v.to_dict() for v in self.verdicts],
            "baseline": {"makespan_ns": self.baseline.makespan_ns},
            "chaos": {
                "makespan_ns": self.chaos.makespan_ns,
                "worker_failures": self.chaos.worker_failures,
                "tasks_retried": self.chaos.tasks_retried,
                "tasks_unrecovered": self.chaos.tasks_unrecovered,
            },
        }

    def events_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON of the experiment (CI determinism diffing)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def _submit_job_mix(
    preset: ChaosPreset,
    engine: ExecutionEngine,
    policies: Tuple[str, ...],
):
    """One JobManager with ``len(policies)`` jobs: distinct per-job
    graphs (seeded off the preset's graph seed) and a 2:1 priority for
    job 1 so fair-share weighting is exercised."""
    manager = JobManager(engine)
    handles = []
    for i, policy in enumerate(policies):
        graph = make_layered_dag(
            layers=preset.layers,
            width=preset.width,
            num_workers=len(engine.node),
            functions=("saxpy", "stencil5", "montecarlo"),
            seed=preset.graph_seed + i,
        )
        handles.append(
            manager.submit_job(graph, policy=policy, priority=2 if i == 0 else 1)
        )
    return manager, handles


def run_multi_job_chaos_experiment(
    preset_name: str,
    seed: int = 0,
    policies: Tuple[str, ...] = ("greedy-hw", "energy"),
    telemetry=None,
    compiled=None,
) -> MultiJobChaosReport:
    """Run one chaos scenario with concurrent tenant jobs.

    Same two-run shape as :func:`run_chaos_experiment` -- a fault-free
    multi-job baseline (FT off) pins down the workload and the fault
    window, then the chaos run arms the self-healing runtime and injects
    the seeded plan while the jobs stream concurrently.  The verdicts
    are *per job*: each tenant's workload signature and task integrity
    is checked independently.
    """
    if preset_name not in CHAOS_PRESETS:
        known = ", ".join(sorted(CHAOS_PRESETS))
        raise KeyError(f"unknown chaos preset {preset_name!r}; choose from: {known}")
    preset = CHAOS_PRESETS[preset_name]
    registry, library = (
        compiled if compiled is not None else compiled_suite(max_variants=1)
    )

    # --- baseline: concurrent jobs, fault tolerance off, no faults -----
    sim0 = Simulator()
    node0 = ComputeNode(sim0, node_preset(preset.node))
    engine0 = ExecutionEngine(
        node0, registry, library, use_daemon=True, daemon_period_ns=100_000.0
    )
    manager0, handles0 = _submit_job_mix(preset, engine0, policies)
    baseline = manager0.run()

    # --- chaos: self-healing runtime + seeded fault plan ---------------
    ft = FaultTolerancePolicy(
        heartbeat_period_ns=preset.heartbeat_period_ns,
        max_attempts=preset.max_attempts,
    )
    sim = Simulator()
    node = ComputeNode(sim, node_preset(preset.node))
    engine = ExecutionEngine(
        node, registry, library,
        use_daemon=True, daemon_period_ns=100_000.0,
        fault_tolerance=ft, telemetry=telemetry,
    )
    manager, handles = _submit_job_mix(preset, engine, policies)
    lo, hi = preset.window_fraction
    config = ChaosConfig(
        worker_crashes=preset.worker_crashes,
        transient_fraction=preset.transient_fraction,
        worker_downtime_ns=preset.worker_downtime_ns,
        link_degradations=preset.link_degradations,
        link_drop_rate=preset.link_drop_rate,
        link_latency_multiplier=preset.link_latency_multiplier,
        window_ns=(lo * baseline.makespan_ns, hi * baseline.makespan_ns),
    )
    controller = ChaosController(sim, seed=seed, telemetry=telemetry)
    controller.schedule_random(engine, node.network.links, config=config)
    controller.arm()
    chaos = manager.run()

    verdicts = []
    for h0, h in zip(handles0, handles):
        outcome = chaos.job(h.job_id)
        verdicts.append(
            JobChaosVerdict(
                job_id=h.job_id,
                policy=h.policy.name,
                priority=h.priority,
                tasks=outcome.report.tasks,
                tasks_retried=outcome.report.tasks_retried,
                tasks_unrecovered=outcome.report.tasks_unrecovered,
                latency_ns=outcome.latency_ns,
                workload_match=(
                    graph_signature(h0.graph) == graph_signature(h.graph)
                ),
            )
        )
    return MultiJobChaosReport(
        preset=preset_name,
        seed=seed,
        baseline=baseline,
        chaos=chaos,
        verdicts=verdicts,
        faults_planned=controller.faults_planned,
        faults_injected=controller.faults_injected,
        plan=[f.to_dict() for f in controller.plan],
    )
