"""Correlated failure domains: the enclosure structure chaos ignores.

Failures in a multi-FPGA rack are not independent: Workers share blades,
blades share racks, racks share PSUs, and one blown supply or enclosure
fault takes the whole subtree down at once (the ExaNeSt prototype's
field experience).  This module gives the chaos layer that structure:

- :class:`FailureDomain` -- one node of the enclosure tree: a tier
  (``node`` | ``blade`` | ``rack`` | ``psu``), the Worker ids under it,
  and its parent domain,
- :class:`DomainTree` -- the whole tree over one machine's Workers,
  built deterministically from fan-out knobs
  (:func:`build_domain_tree`),
- :class:`DomainChaosConfig` -- per-tier MTBF knobs for the seeded
  generator: a tier with an MTBF draws exponential failure times per
  domain; tiers left at ``None`` never fail.

The tree itself is pure data; :meth:`ChaosController.fail_domain
<repro.chaos.controller.ChaosController.fail_domain>` turns one domain
plus a timestamp into a single correlated fault event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: tier names, leaf to root -- index = depth of correlation
TIERS = ("node", "blade", "rack", "psu")


@dataclass(frozen=True)
class FailureDomain:
    """One enclosure-tree node: every Worker under it fails together."""

    name: str                   # e.g. "rack0"
    tier: str                   # one of TIERS
    workers: Tuple[int, ...]    # member Worker ids, ascending
    parent: Optional[str] = None

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise ValueError(f"unknown tier {self.tier!r}; choose from {TIERS}")
        if not self.workers:
            raise ValueError(f"domain {self.name!r} has no workers")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "tier": self.tier,
            "workers": list(self.workers),
            "parent": self.parent,
        }


class DomainTree:
    """The enclosure tree over one machine's Workers."""

    def __init__(self, domains: List[FailureDomain]) -> None:
        self._by_name: Dict[str, FailureDomain] = {}
        for d in domains:
            if d.name in self._by_name:
                raise ValueError(f"duplicate domain name {d.name!r}")
            self._by_name[d.name] = d

    def domain(self, name: str) -> FailureDomain:
        if name not in self._by_name:
            known = ", ".join(sorted(self._by_name))
            raise KeyError(f"unknown domain {name!r}; choose from: {known}")
        return self._by_name[name]

    def domains(self, tier: Optional[str] = None) -> List[FailureDomain]:
        """Domains (of one tier), deterministically ordered by name."""
        out = [
            d for d in self._by_name.values()
            if tier is None or d.tier == tier
        ]
        out.sort(key=lambda d: (TIERS.index(d.tier), d.workers[0], d.name))
        return out

    def members(self, name: str) -> List[int]:
        return list(self.domain(name).workers)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "domains": [d.to_dict() for d in self.domains()],
        }


def build_domain_tree(
    num_workers: int,
    workers_per_blade: int = 2,
    blades_per_rack: int = 2,
    racks_per_psu: int = 2,
) -> DomainTree:
    """The deterministic enclosure tree for ``num_workers`` Workers.

    Workers fill blades in id order, blades fill racks, racks share
    PSUs; the trailing blade/rack/PSU may be partially populated.  A
    tier collapses away when it would only ever mirror the tier below
    (e.g. one blade per rack on a 2-Worker board still gets its rack,
    because killing the rack *is* the interesting correlated event).
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    if min(workers_per_blade, blades_per_rack, racks_per_psu) < 1:
        raise ValueError("fan-outs must be positive")
    domains: List[FailureDomain] = []

    blades: List[Tuple[int, ...]] = []
    for b in range(0, num_workers, workers_per_blade):
        blades.append(tuple(range(b, min(b + workers_per_blade, num_workers))))
    racks: List[Tuple[int, ...]] = []
    for r in range(0, len(blades), blades_per_rack):
        group = blades[r:r + blades_per_rack]
        racks.append(tuple(w for blade in group for w in blade))
    psus: List[Tuple[int, ...]] = []
    for p in range(0, len(racks), racks_per_psu):
        group = racks[p:p + racks_per_psu]
        psus.append(tuple(w for rack in group for w in rack))

    for i, workers in enumerate(psus):
        domains.append(FailureDomain(f"psu{i}", "psu", workers))
    for i, workers in enumerate(racks):
        parent = f"psu{i // racks_per_psu}"
        domains.append(FailureDomain(f"rack{i}", "rack", workers, parent))
    for i, workers in enumerate(blades):
        parent = f"rack{i // blades_per_rack}"
        domains.append(FailureDomain(f"blade{i}", "blade", workers, parent))
    for w in range(num_workers):
        parent = f"blade{w // workers_per_blade}"
        domains.append(FailureDomain(f"node{w}", "node", (w,), parent))
    return DomainTree(domains)


@dataclass(frozen=True)
class DomainChaosConfig:
    """Knobs of the seeded correlated-failure generator.

    Each tier with an MTBF draws one exponential failure time per
    domain of that tier (dedicated per-domain RNG streams, so the plan
    is independent of iteration order); draws landing inside
    ``window_ns`` become correlated faults.  ``max_failures`` caps the
    plan at the earliest events so a short window cannot flatten the
    whole machine.
    """

    workers_per_blade: int = 2
    blades_per_rack: int = 2
    racks_per_psu: int = 2
    node_mtbf_ns: Optional[float] = None
    blade_mtbf_ns: Optional[float] = None
    rack_mtbf_ns: Optional[float] = None
    psu_mtbf_ns: Optional[float] = None
    downtime_ns: Optional[float] = 400_000.0   # None = permanent
    window_ns: Tuple[float, float] = (100_000.0, 500_000.0)
    max_failures: int = 4

    def __post_init__(self) -> None:
        if min(self.workers_per_blade, self.blades_per_rack, self.racks_per_psu) < 1:
            raise ValueError("fan-outs must be positive")
        for mtbf in (self.node_mtbf_ns, self.blade_mtbf_ns,
                     self.rack_mtbf_ns, self.psu_mtbf_ns):
            if mtbf is not None and mtbf <= 0:
                raise ValueError("MTBF must be positive (or None)")
        if self.downtime_ns is not None and self.downtime_ns <= 0:
            raise ValueError("downtime must be positive (or None)")
        start, end = self.window_ns
        if start < 0 or end < start:
            raise ValueError(f"invalid injection window {self.window_ns}")
        if self.max_failures < 0:
            raise ValueError("max_failures must be non-negative")

    def mtbf_for(self, tier: str) -> Optional[float]:
        return {
            "node": self.node_mtbf_ns,
            "blade": self.blade_mtbf_ns,
            "rack": self.rack_mtbf_ns,
            "psu": self.psu_mtbf_ns,
        }[tier]
