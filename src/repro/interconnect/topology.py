"""Topology builders.

Two families are provided:

1. The **ECOSCALE machine hierarchy** (Fig. 3): balanced trees whose
   levels model board / chassis / cabinet interconnect layers, each level
   up being slower and costlier per byte -- "starting from the leaves,
   each level up the tree would add one hop in the maximum communication
   distance" (Section 2).

2. **Application/system topologies** cited by the paper for hierarchical
   partitioning studies: flat crossbars (the baseline that does not
   scale), 2-D meshes, fat trees, dragonfly and slimfly-like high-radix
   graphs [Prisacari et al.].

Every builder returns ``(network, workers)`` where ``workers`` is the
ordered list of leaf endpoint ids.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from repro.interconnect.link import LinkParams
from repro.interconnect.network import Network
from repro.sim import Simulator


def level_params(level: int) -> LinkParams:
    """Default per-level link parameters for hierarchy level ``level``.

    Level 0 is the fastest (on-chip / intra-board); each level up loses
    half the bandwidth and pays ~4x latency and ~3x energy per byte,
    matching the on-chip -> off-chip -> off-board -> off-chassis cost
    cliffs of real systems.
    """
    if level < 0:
        raise ValueError(f"level must be non-negative, got {level}")
    return LinkParams(
        bandwidth_gbps=16.0 / (2 ** level),
        latency_ns=10.0 * (4 ** level),
        energy_per_byte_pj=1.0 * (3 ** level),
    )


def build_tree(
    sim: Simulator,
    fanouts: Sequence[int],
    params_per_level: Optional[Sequence[LinkParams]] = None,
) -> Tuple[Network, List[Hashable]]:
    """A balanced tree: ``fanouts[0]`` children at the root, etc.

    Leaves are Workers named ``("w", i)``; internal switches are
    ``("s", depth, index)``.  ``params_per_level[d]`` parameterizes the
    links *below* depth-``d`` switches; by default deeper (closer to the
    leaves) levels are faster, per :func:`level_params`.
    """
    if not fanouts or any(f < 1 for f in fanouts):
        raise ValueError(f"fanouts must be non-empty positive ints, got {fanouts}")
    depth = len(fanouts)
    if params_per_level is None:
        # links directly above the leaves get level 0 (fastest)
        params_per_level = [level_params(depth - 1 - d) for d in range(depth)]
    if len(params_per_level) != depth:
        raise ValueError("params_per_level must match len(fanouts)")

    net = Network(sim, name=f"tree{tuple(fanouts)}")
    workers: List[Hashable] = []
    root = ("s", 0, 0)
    net.add_node(root, kind="switch", depth=0)

    frontier = [root]
    for d, fanout in enumerate(fanouts):
        last_level = d == depth - 1
        next_frontier = []
        for parent in frontier:
            for c in range(fanout):
                if last_level:
                    child: Hashable = ("w", len(workers))
                    net.add_node(child, kind="worker")
                    workers.append(child)
                else:
                    child = ("s", d + 1, len(next_frontier))
                    net.add_node(child, kind="switch", depth=d + 1)
                    next_frontier.append(child)
                net.add_link(parent, child, params_per_level[d])
        frontier = next_frontier
    return net, workers


def build_flat_crossbar(
    sim: Simulator,
    num_workers: int,
    params: LinkParams = LinkParams(),
) -> Tuple[Network, List[Hashable]]:
    """All Workers hang off one central crossbar switch.

    This is the "flat partitioning" strawman: uniform 2-hop distance, but
    every transfer crosses the single shared switch, which is what
    "simply cannot scale".
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    net = Network(sim, name=f"flat{num_workers}")
    hub = ("s", 0, 0)
    net.add_node(hub, kind="switch")
    workers: List[Hashable] = []
    for i in range(num_workers):
        w = ("w", i)
        net.add_node(w, kind="worker")
        net.add_link(hub, w, params)
        workers.append(w)
    return net, workers


def build_fat_tree(
    sim: Simulator,
    fanouts: Sequence[int],
    uplink_width: int = 2,
) -> Tuple[Network, List[Hashable]]:
    """A tree whose upper levels have ``uplink_width``x wider links,
    approximating fat-tree bandwidth tapering."""
    if uplink_width < 1:
        raise ValueError("uplink_width must be >= 1")
    depth = len(fanouts)
    params = []
    for d in range(depth):
        base = level_params(depth - 1 - d)
        lanes = uplink_width ** (depth - 1 - d)
        params.append(
            LinkParams(
                bandwidth_gbps=base.bandwidth_gbps,
                latency_ns=base.latency_ns,
                energy_per_byte_pj=base.energy_per_byte_pj,
                width_lanes=max(1, lanes),
            )
        )
    return build_tree(sim, fanouts, params)


def build_mesh2d(
    sim: Simulator,
    rows: int,
    cols: int,
    params: LinkParams = LinkParams(),
) -> Tuple[Network, List[Hashable]]:
    """A rows x cols 2-D mesh of Workers (each Worker also routes)."""
    if rows < 1 or cols < 1:
        raise ValueError("mesh dimensions must be positive")
    net = Network(sim, name=f"mesh{rows}x{cols}")
    workers: List[Hashable] = []
    for r in range(rows):
        for c in range(cols):
            w = ("w", r * cols + c)
            net.add_node(w, kind="worker", row=r, col=c)
            workers.append(w)
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                net.add_link(("w", r * cols + c), ("w", r * cols + c + 1), params)
            if r + 1 < rows:
                net.add_link(("w", r * cols + c), ("w", (r + 1) * cols + c), params)
    return net, workers


def build_dragonfly(
    sim: Simulator,
    groups: int,
    routers_per_group: int,
    workers_per_router: int,
    local_params: Optional[LinkParams] = None,
    global_params: Optional[LinkParams] = None,
) -> Tuple[Network, List[Hashable]]:
    """A canonical dragonfly: fully-connected router groups, one global
    link between every pair of groups (assigned round-robin to routers)."""
    if groups < 1 or routers_per_group < 1 or workers_per_router < 1:
        raise ValueError("dragonfly dimensions must be positive")
    local = local_params or level_params(0)
    glob = global_params or level_params(2)
    net = Network(sim, name=f"dragonfly{groups}x{routers_per_group}")
    workers: List[Hashable] = []

    for g in range(groups):
        for r in range(routers_per_group):
            router = ("r", g, r)
            net.add_node(router, kind="switch", group=g)
            for w in range(workers_per_router):
                worker = ("w", len(workers))
                net.add_node(worker, kind="worker", group=g)
                net.add_link(router, worker, local)
                workers.append(worker)
        # intra-group all-to-all
        for a in range(routers_per_group):
            for b in range(a + 1, routers_per_group):
                net.add_link(("r", g, a), ("r", g, b), local)
    # one global link per group pair
    pair_idx = 0
    for g1 in range(groups):
        for g2 in range(g1 + 1, groups):
            r1 = pair_idx % routers_per_group
            r2 = (pair_idx + 1) % routers_per_group
            net.add_link(("r", g1, r1), ("r", g2, r2), glob)
            pair_idx += 1
    return net, workers


def _paley_edges(q: int) -> List[Tuple[int, int]]:
    """Edges of the Paley graph on GF(q); requires q prime, q % 4 == 1."""
    residues = {(x * x) % q for x in range(1, q)}
    edges = []
    for a in range(q):
        for b in range(a + 1, q):
            if (b - a) % q in residues:
                edges.append((a, b))
    return edges


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    f = 2
    while f * f <= n:
        if n % f == 0:
            return False
        f += 1
    return True


def build_slimfly_like(
    sim: Simulator,
    q: int,
    workers_per_router: int = 1,
    local_params: Optional[LinkParams] = None,
    global_params: Optional[LinkParams] = None,
) -> Tuple[Network, List[Hashable]]:
    """A diameter-2, low-hop high-radix graph standing in for SlimFly.

    We use the Paley graph on GF(q) (q prime, q = 1 mod 4) for the router
    fabric; like the McKay-Miller-Siran graphs used by SlimFly it is a
    vertex-transitive diameter-2 graph near the Moore bound, which is the
    property the paper's Section 2 cares about (minimum hop count).
    """
    if not _is_prime(q) or q % 4 != 1:
        raise ValueError(f"q must be a prime with q % 4 == 1, got {q}")
    local = local_params or level_params(0)
    glob = global_params or level_params(1)
    net = Network(sim, name=f"slimfly{q}")
    workers: List[Hashable] = []
    for v in range(q):
        router = ("r", v)
        net.add_node(router, kind="switch")
        for w in range(workers_per_router):
            worker = ("w", len(workers))
            net.add_node(worker, kind="worker")
            net.add_link(router, worker, local)
            workers.append(worker)
    for a, b in _paley_edges(q):
        net.add_link(("r", a), ("r", b), glob)
    return net, workers
