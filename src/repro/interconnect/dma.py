"""A descriptor-based DMA engine.

The paper contrasts UNIMEM's load/store capability with architectures
that "support only DMA operations, which are not efficient for small
data transfers" (Section 4.1).  This model makes that comparison honest:
a DMA transfer pays a fixed descriptor-programming cost and an engine
occupancy (one transfer in flight per channel), but moves bulk data at
full link bandwidth with a single protocol header.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Hashable, List, Optional, Tuple

from repro.interconnect.message import Message, TransactionType
from repro.interconnect.network import Network
from repro.sim import Resource, Simulator, Timeout


@dataclass(frozen=True)
class DmaParams:
    """Engine characteristics (AXI DMA-class defaults)."""

    setup_ns: float = 600.0            # descriptor write + doorbell
    completion_irq_ns: float = 150.0   # completion interrupt handling
    channels: int = 2                  # concurrent in-flight transfers
    max_transfer_bytes: int = 1 << 23  # 8 MiB per descriptor

    def __post_init__(self) -> None:
        if self.setup_ns < 0 or self.completion_irq_ns < 0:
            raise ValueError("overheads must be non-negative")
        if self.channels < 1:
            raise ValueError("need at least one channel")
        if self.max_transfer_bytes < 1:
            raise ValueError("max transfer must be positive")


@dataclass
class DmaTransfer:
    """Record of one completed transfer."""

    src: Hashable
    dst: Hashable
    size_bytes: int
    descriptors: int
    issued_at: float
    completed_at: float

    @property
    def latency_ns(self) -> float:
        return self.completed_at - self.issued_at


class DmaEngine:
    """One Worker's DMA engine, moving data over a :class:`Network`."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        params: DmaParams = DmaParams(),
        name: str = "",
    ) -> None:
        self.sim = sim
        self.network = network
        self.params = params
        self.name = name or "dma"
        self._channels = Resource(sim, capacity=params.channels, name=f"{self.name}.ch")
        self.transfers: List[DmaTransfer] = []
        self.bytes_moved = 0

    # ------------------------------------------------------------------
    def descriptors_for(self, size_bytes: int) -> int:
        if size_bytes <= 0:
            raise ValueError(f"transfer size must be positive, got {size_bytes}")
        m = self.params.max_transfer_bytes
        return (size_bytes + m - 1) // m

    def cost_ns(self, src: Hashable, dst: Hashable, size_bytes: int) -> float:
        """Analytic uncontended latency of one transfer."""
        descriptors = self.descriptors_for(size_bytes)
        route = self.network.route(src, dst)
        wire = size_bytes + descriptors * TransactionType.DMA.header_bytes
        return (
            descriptors * self.params.setup_ns
            + route.latency(wire)
            + self.params.completion_irq_ns
        )

    def transfer(self, src: Hashable, dst: Hashable, size_bytes: int) -> Generator:
        """Simulation process: one DMA transfer; returns the record."""
        descriptors = self.descriptors_for(size_bytes)
        issued = self.sim.now
        req = self._channels.request()
        yield req
        try:
            yield Timeout(descriptors * self.params.setup_ns)
            remaining = size_bytes
            while remaining > 0:
                chunk = min(remaining, self.params.max_transfer_bytes)
                msg = Message(src, dst, chunk, TransactionType.DMA)
                yield from self.network.send(msg)
                remaining -= chunk
            yield Timeout(self.params.completion_irq_ns)
        finally:
            self._channels.release(req)
        record = DmaTransfer(
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            descriptors=descriptors,
            issued_at=issued,
            completed_at=self.sim.now,
        )
        self.transfers.append(record)
        self.bytes_moved += size_bytes
        return record

    @property
    def mean_latency_ns(self) -> float:
        if not self.transfers:
            return 0.0
        return sum(t.latency_ns for t in self.transfers) / len(self.transfers)
