"""Multi-layer hierarchical interconnect.

ECOSCALE Workers communicate "through a multi-layer interconnection, which
allows load and store commands, DMA operations, interrupts, and
synchronization" (Section 4.1, Fig. 3).  Compute Nodes are in turn joined
by an MPI-based multi-layer interconnect following the application
topology (Fig. 1).

This package provides:

- :class:`Link` -- a bandwidth/latency/energy-modelled channel with
  contention (a simulation :class:`~repro.sim.Resource`),
- :class:`Message` / :class:`TransactionType` -- what travels on links,
- :class:`Network` -- nodes + links + shortest-path routing, with both an
  analytic cost query and a simulated transfer process,
- topology builders: balanced trees (the ECOSCALE hierarchy), fat trees,
  2-D meshes, dragonfly and slimfly-like graphs for the partitioning
  study of Fig. 1.
"""

from repro.interconnect.dma import DmaEngine, DmaParams, DmaTransfer
from repro.interconnect.link import Link, LinkParams
from repro.interconnect.message import Message, TransactionType
from repro.interconnect.network import Network, Route
from repro.interconnect.topology import (
    build_dragonfly,
    build_fat_tree,
    build_flat_crossbar,
    build_mesh2d,
    build_slimfly_like,
    build_tree,
)

__all__ = [
    "DmaEngine",
    "DmaParams",
    "DmaTransfer",
    "Link",
    "LinkParams",
    "Message",
    "Network",
    "Route",
    "TransactionType",
    "build_dragonfly",
    "build_fat_tree",
    "build_flat_crossbar",
    "build_mesh2d",
    "build_slimfly_like",
    "build_tree",
]
