"""Transactions that travel on the ECOSCALE interconnect.

The paper's multi-layer interconnect carries four transaction classes
(Section 4.1): "load and store commands, DMA operations, interrupts, and
synchronization between the Workers".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

_message_ids = itertools.count()


class TransactionType(Enum):
    LOAD = "load"
    STORE = "store"
    DMA = "dma"
    INTERRUPT = "interrupt"
    SYNC = "sync"
    CONFIG = "config"          # partial-reconfiguration bitstream traffic
    MPI = "mpi"                # inter-Compute-Node messages

    @property
    def header_bytes(self) -> int:
        """Protocol overhead per transaction of this class."""
        return {
            TransactionType.LOAD: 16,
            TransactionType.STORE: 16,
            TransactionType.DMA: 32,
            TransactionType.INTERRUPT: 8,
            TransactionType.SYNC: 8,
            TransactionType.CONFIG: 32,
            TransactionType.MPI: 64,
        }[self]

    @property
    def priority(self) -> int:
        """Arbitration priority: lower is more urgent.

        Synchronization and interrupts overtake bulk DMA -- the reason the
        paper insists DMA-only architectures "are not efficient for small
        data transfers such as messages to synchronize remote threads".
        """
        return {
            TransactionType.INTERRUPT: 0,
            TransactionType.SYNC: 0,
            TransactionType.LOAD: 1,
            TransactionType.STORE: 1,
            TransactionType.MPI: 2,
            TransactionType.CONFIG: 3,
            TransactionType.DMA: 4,
        }[self]


@dataclass
class Message:
    """One transaction: source/destination node ids and a payload size."""

    src: int
    dst: int
    size_bytes: int
    kind: TransactionType = TransactionType.DMA
    payload: Any = None
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    issued_at: Optional[float] = None
    delivered_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative message size {self.size_bytes}")

    @property
    def wire_bytes(self) -> int:
        """Payload plus protocol header."""
        return self.size_bytes + self.kind.header_bytes

    @property
    def latency(self) -> Optional[float]:
        if self.issued_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.issued_at
