"""A network of nodes and links with routing, costing and simulation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import networkx as nx

from repro.interconnect.link import Link, LinkParams
from repro.interconnect.message import Message, TransactionType
from repro.sim import Simulator


@dataclass
class Route:
    """A resolved path: the node sequence and the links traversed."""

    nodes: List[Hashable]
    links: List[Link]

    @property
    def hops(self) -> int:
        return len(self.links)

    def latency(self, size_bytes: int) -> float:
        """Uncontended end-to-end latency, store-and-forward per hop."""
        return sum(link.cost(size_bytes) for link in self.links)

    def energy(self, size_bytes: int) -> float:
        return sum(size_bytes * link.params.energy_per_byte_pj for link in self.links)


class Network:
    """Nodes joined by :class:`Link` objects, routed by weighted shortest path.

    Endpoints (Workers, Compute-Node routers, chassis switches) are
    arbitrary hashable ids.  Link weights for routing are the uncontended
    per-hop latencies, so routes naturally prefer faster layers.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.graph = nx.Graph()
        self._route_cache: Dict[Tuple[Hashable, Hashable], Route] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        # armed by repro.telemetry.wiring.attach_network
        self.telemetry = None
        self.tel_msg_latency = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Hashable, **attrs) -> None:
        self.graph.add_node(node, **attrs)

    def add_link(
        self,
        a: Hashable,
        b: Hashable,
        params: LinkParams = LinkParams(),
        name: str = "",
    ) -> Link:
        link = Link(self.sim, params, name or f"{a}<->{b}")
        self.graph.add_edge(a, b, link=link, weight=params.latency_ns)
        self._route_cache.clear()
        return link

    @property
    def nodes(self) -> List[Hashable]:
        return list(self.graph.nodes)

    @property
    def links(self) -> List[Link]:
        return [data["link"] for _, _, data in self.graph.edges(data=True)]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, src: Hashable, dst: Hashable) -> Route:
        """Weighted shortest path; cached until the topology changes."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            route = Route([src], [])
        else:
            try:
                path = nx.shortest_path(self.graph, src, dst, weight="weight")
            except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
                raise ValueError(f"no route from {src!r} to {dst!r}") from exc
            links = [
                self.graph.edges[path[i], path[i + 1]]["link"]
                for i in range(len(path) - 1)
            ]
            route = Route(path, links)
        self._route_cache[key] = route
        return route

    def hop_distance(self, src: Hashable, dst: Hashable) -> int:
        return self.route(src, dst).hops

    def hop_distances_from(
        self, src: Hashable, dsts: Optional[Iterable[Hashable]] = None
    ) -> Dict[Hashable, int]:
        """Hop counts from ``src`` to each destination in one sweep.

        One single-source Dijkstra replaces a per-pair search, which is
        what makes all-pairs consumers (NUMA distance matrices) linear in
        sources instead of quadratic.  Deliberately does *not* populate
        the route cache: on graphs with equal-cost paths a batched sweep
        may pick a different representative path than :meth:`route`, and
        traffic must keep flowing over exactly the cached routes.
        """
        if src not in self.graph:
            raise ValueError(f"unknown node {src!r}")
        targets = list(dsts) if dsts is not None else self.nodes
        _, paths = nx.single_source_dijkstra(self.graph, src, weight="weight")
        out: Dict[Hashable, int] = {}
        for dst in targets:
            if dst == src:
                out[dst] = 0
                continue
            path = paths.get(dst)
            if path is None:
                raise ValueError(f"no route from {src!r} to {dst!r}")
            out[dst] = len(path) - 1
        return out

    def diameter_hops(self, endpoints: Optional[Iterable[Hashable]] = None) -> int:
        """Maximum hop distance between any two endpoints.

        ``endpoints`` restricts the measurement to leaf nodes (Workers) --
        the paper's "maximum communication distance between any two
        processing units".
        """
        nodes = list(endpoints) if endpoints is not None else self.nodes
        best = 0
        for i, a in enumerate(nodes):
            lengths = nx.single_source_shortest_path_length(self.graph, a)
            for b in nodes[i + 1:]:
                if b not in lengths:
                    raise ValueError(f"{b!r} unreachable from {a!r}")
                if lengths[b] > best:
                    best = lengths[b]
        return best

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def send_cost(self, msg: Message) -> Tuple[float, float]:
        """Analytic (latency_ns, energy_pj) for ``msg``; accounts traffic."""
        route = self.route(msg.src, msg.dst)
        wire = msg.wire_bytes
        for link in route.links:
            link.account(wire)
        self.messages_sent += 1
        self.bytes_sent += wire * max(1, route.hops)
        return route.latency(wire), route.energy(wire)

    def send(self, msg: Message):
        """Simulation process: store-and-forward over every hop with
        contention.  ``yield from network.send(msg)``; returns the message
        with timestamps filled in."""
        msg.issued_at = self.sim.now
        route = self.route(msg.src, msg.dst)
        wire = msg.wire_bytes
        self.messages_sent += 1
        for link in route.links:
            yield from link.transfer(wire, priority=msg.kind.priority)
        self.bytes_sent += wire * max(1, route.hops)
        msg.delivered_at = self.sim.now
        if self.telemetry is not None:
            self.tel_msg_latency.record(msg.delivered_at - msg.issued_at)
        return msg

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def total_energy_pj(self) -> float:
        return sum(link.energy_pj for link in self.links)

    def total_link_bytes(self) -> int:
        """Sum of bytes carried per link (counts each hop separately) --
        the 'data traffic' metric of the paper's energy argument."""
        return sum(link.bytes_carried for link in self.links)

    def reset_traffic(self) -> None:
        for link in self.links:
            link.bytes_carried = 0
            link.messages_carried = 0
            link.energy_pj = 0.0
        self.messages_sent = 0
        self.bytes_sent = 0
