"""A network of nodes and links with routing, costing and simulation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import networkx as nx

from repro.interconnect.link import Link, LinkParams
from repro.interconnect.message import Message, TransactionType
from repro.sim import Simulator


@dataclass
class Route:
    """A resolved path: the node sequence and the links traversed."""

    nodes: List[Hashable]
    links: List[Link]

    @property
    def hops(self) -> int:
        return len(self.links)

    def latency(self, size_bytes: int) -> float:
        """Uncontended end-to-end latency, store-and-forward per hop."""
        return sum(link.cost(size_bytes) for link in self.links)

    def energy(self, size_bytes: int) -> float:
        return sum(size_bytes * link.params.energy_per_byte_pj for link in self.links)


class Network:
    """Nodes joined by :class:`Link` objects, routed by weighted shortest path.

    Endpoints (Workers, Compute-Node routers, chassis switches) are
    arbitrary hashable ids.  Link weights for routing are the uncontended
    per-hop latencies, so routes naturally prefer faster layers.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.graph = nx.Graph()
        self._route_cache: Dict[Tuple[Hashable, Hashable], Route] = {}
        # label paths seeded from a template, materialized into Routes
        # lazily on first use (most seeded pairs never carry traffic)
        self._seeded_paths: Dict[Tuple[Hashable, Hashable], Tuple[Hashable, ...]] = {}
        # (parent, depth) maps from index_tree(); lets route() build any
        # pair's unique path by an LCA walk instead of a graph search
        self._tree_index: Optional[Tuple[Dict, Dict]] = None
        self.messages_sent = 0
        self.bytes_sent = 0
        # armed by repro.telemetry.wiring.attach_network
        self.telemetry = None
        self.tel_msg_latency = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Hashable, **attrs) -> None:
        self.graph.add_node(node, **attrs)

    def add_link(
        self,
        a: Hashable,
        b: Hashable,
        params: LinkParams = LinkParams(),
        name: str = "",
    ) -> Link:
        link = Link(self.sim, params, name or f"{a}<->{b}")
        self.graph.add_edge(a, b, link=link, weight=params.latency_ns)
        self._route_cache.clear()
        self._seeded_paths.clear()
        self._tree_index = None
        return link

    @property
    def nodes(self) -> List[Hashable]:
        return list(self.graph.nodes)

    @property
    def links(self) -> List[Link]:
        return [data["link"] for _, _, data in self.graph.edges(data=True)]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, src: Hashable, dst: Hashable) -> Route:
        """Weighted shortest path; cached until the topology changes."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        seeded = self._seeded_paths.pop(key, None)
        if seeded is not None:
            edges = self.graph.edges
            route = Route(
                list(seeded),
                [
                    edges[seeded[i], seeded[i + 1]]["link"]
                    for i in range(len(seeded) - 1)
                ],
            )
            self._route_cache[key] = route
            return route
        treed = self._tree_path(src, dst)
        if treed is not None:
            edges = self.graph.edges
            route = Route(
                list(treed),
                [
                    edges[treed[i], treed[i + 1]]["link"]
                    for i in range(len(treed) - 1)
                ],
            )
            self._route_cache[key] = route
            return route
        if src == dst:
            route = Route([src], [])
        else:
            try:
                path = nx.shortest_path(self.graph, src, dst, weight="weight")
            except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
                raise ValueError(f"no route from {src!r} to {dst!r}") from exc
            links = [
                self.graph.edges[path[i], path[i + 1]]["link"]
                for i in range(len(path) - 1)
            ]
            route = Route(path, links)
        self._route_cache[key] = route
        return route

    def hop_distance(self, src: Hashable, dst: Hashable) -> int:
        return self.route(src, dst).hops

    def route_paths(self) -> Dict[Tuple[Hashable, Hashable], Tuple[Hashable, ...]]:
        """Every cached route as a node-label path (no Link references).

        Label paths are safe to carry across *identically shaped*
        networks -- shard bring-up computes the shortest paths once per
        node template and replays them into each clone's cache via
        :meth:`seed_routes`, skipping the per-pair graph search.
        """
        out = {
            key: tuple(route.nodes) for key, route in self._route_cache.items()
        }
        for key, nodes in self._seeded_paths.items():
            out.setdefault(key, tuple(nodes))
        return out

    def seed_routes(
        self, paths: Dict[Tuple[Hashable, Hashable], Tuple[Hashable, ...]]
    ) -> None:
        """Pre-populate routing from label paths over *this* network.

        Paths are stored as labels and materialized into Route objects
        (with this network's own Link references) only on first use;
        a path that does not exist edge-by-edge here fails loudly at
        materialization instead of mis-routing.
        """
        for key, nodes in paths.items():
            if key not in self._route_cache and key not in self._seeded_paths:
                self._seeded_paths[key] = tuple(nodes)

    def index_tree(self) -> None:
        """Index a tree topology for O(depth) route materialization.

        One BFS builds a parent/depth map; :meth:`route` then resolves
        any pair by walking both ends up to their lowest common
        ancestor.  Only valid on connected trees -- there each pair has
        a *unique* simple path, so the LCA walk reproduces exactly the
        path a graph search would find and indexing cannot change which
        links carry traffic.  Raises otherwise; any topology change
        drops the index.
        """
        nodes = list(self.graph.nodes)
        if not nodes:
            raise ValueError("cannot index an empty network")
        root = nodes[0]
        parent: Dict[Hashable, Optional[Hashable]] = {root: None}
        depth: Dict[Hashable, int] = {root: 0}
        order = [root]
        for node in order:
            for nbr in self.graph.adj[node]:
                if nbr not in parent:
                    parent[nbr] = node
                    depth[nbr] = depth[node] + 1
                    order.append(nbr)
        if len(parent) != len(nodes) or self.graph.number_of_edges() != len(nodes) - 1:
            raise ValueError("index_tree needs a connected tree")
        self._tree_index = (parent, depth)

    def _tree_path(
        self, src: Hashable, dst: Hashable
    ) -> Optional[Tuple[Hashable, ...]]:
        """The unique src->dst label path via the tree index, else None."""
        if self._tree_index is None:
            return None
        parent, depth = self._tree_index
        if src not in depth or dst not in depth:
            return None
        a, b = src, dst
        up_a, up_b = [a], [b]
        while a != b:
            if depth[a] >= depth[b]:
                a = parent[a]
                up_a.append(a)
            else:
                b = parent[b]
                up_b.append(b)
        return tuple(up_a + up_b[-2::-1])

    def hop_distances_from(
        self, src: Hashable, dsts: Optional[Iterable[Hashable]] = None
    ) -> Dict[Hashable, int]:
        """Hop counts from ``src`` to each destination in one sweep.

        One single-source Dijkstra replaces a per-pair search, which is
        what makes all-pairs consumers (NUMA distance matrices) linear in
        sources instead of quadratic.  Deliberately does *not* populate
        the route cache: on graphs with equal-cost paths a batched sweep
        may pick a different representative path than :meth:`route`, and
        traffic must keep flowing over exactly the cached routes.
        """
        if src not in self.graph:
            raise ValueError(f"unknown node {src!r}")
        targets = list(dsts) if dsts is not None else self.nodes
        _, paths = nx.single_source_dijkstra(self.graph, src, weight="weight")
        out: Dict[Hashable, int] = {}
        for dst in targets:
            if dst == src:
                out[dst] = 0
                continue
            path = paths.get(dst)
            if path is None:
                raise ValueError(f"no route from {src!r} to {dst!r}")
            out[dst] = len(path) - 1
        return out

    def diameter_hops(self, endpoints: Optional[Iterable[Hashable]] = None) -> int:
        """Maximum hop distance between any two endpoints.

        ``endpoints`` restricts the measurement to leaf nodes (Workers) --
        the paper's "maximum communication distance between any two
        processing units".
        """
        nodes = list(endpoints) if endpoints is not None else self.nodes
        if self._tree_index is not None and nodes:
            # two farthest-point sweeps: on a tree, the farthest member
            # of a set from ANY start is one end of a longest in-set
            # path, so two O(n * depth) sweeps replace n BFS passes
            def dist(a: Hashable, b: Hashable) -> int:
                path = self._tree_path(a, b)
                if path is None:
                    raise ValueError(f"{b!r} unreachable from {a!r}")
                return len(path) - 1

            u = max(nodes, key=lambda n: dist(nodes[0], n))
            return max(dist(u, n) for n in nodes)
        best = 0
        for i, a in enumerate(nodes):
            lengths = nx.single_source_shortest_path_length(self.graph, a)
            for b in nodes[i + 1:]:
                if b not in lengths:
                    raise ValueError(f"{b!r} unreachable from {a!r}")
                if lengths[b] > best:
                    best = lengths[b]
        return best

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def send_cost(self, msg: Message) -> Tuple[float, float]:
        """Analytic (latency_ns, energy_pj) for ``msg``; accounts traffic."""
        route = self.route(msg.src, msg.dst)
        wire = msg.wire_bytes
        for link in route.links:
            link.account(wire)
        self.messages_sent += 1
        self.bytes_sent += wire * max(1, route.hops)
        return route.latency(wire), route.energy(wire)

    def send(self, msg: Message):
        """Simulation process: store-and-forward over every hop with
        contention.  ``yield from network.send(msg)``; returns the message
        with timestamps filled in."""
        msg.issued_at = self.sim.now
        route = self.route(msg.src, msg.dst)
        wire = msg.wire_bytes
        self.messages_sent += 1
        for link in route.links:
            yield from link.transfer(wire, priority=msg.kind.priority)
        self.bytes_sent += wire * max(1, route.hops)
        msg.delivered_at = self.sim.now
        if self.telemetry is not None:
            self.tel_msg_latency.record(msg.delivered_at - msg.issued_at)
        return msg

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def total_energy_pj(self) -> float:
        return sum(link.energy_pj for link in self.links)

    def total_link_bytes(self) -> int:
        """Sum of bytes carried per link (counts each hop separately) --
        the 'data traffic' metric of the paper's energy argument."""
        return sum(link.bytes_carried for link in self.links)

    def reset_traffic(self) -> None:
        for link in self.links:
            link.bytes_carried = 0
            link.messages_carried = 0
            link.energy_pj = 0.0
        self.messages_sent = 0
        self.bytes_sent = 0
