"""Point-to-point links with bandwidth, latency, energy and contention.

Links can also be *degraded* by the chaos subsystem
(:mod:`repro.chaos`): a :class:`LinkFault` armed on a live link models a
lossy or slow channel (per-transfer drop probability paid as
retransmissions, a latency multiplier) or a hard outage (transfers stall
until the link comes back up).  With no fault armed the transfer path is
byte-identical to the healthy one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.sim import PriorityResource, Simulator, Timeout


@dataclass(frozen=True)
class LinkParams:
    """Physical link characteristics.

    Defaults model an on-chip AXI-class layer; inter-chip and inter-chassis
    layers use the constructors in :mod:`repro.interconnect.topology` with
    progressively higher latency and energy per byte (the paper's
    "each level up the tree adds one hop" cost structure).
    """

    bandwidth_gbps: float = 16.0      # GB/s
    latency_ns: float = 10.0          # propagation + arbitration
    energy_per_byte_pj: float = 1.0   # transport energy
    width_lanes: int = 1              # parallel channels (capacity)

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_gbps}")
        if self.latency_ns < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_ns}")
        if self.energy_per_byte_pj < 0:
            raise ValueError("energy per byte must be non-negative")
        if self.width_lanes < 1:
            raise ValueError("need at least one lane")

    def transfer_ns(self, size_bytes: int) -> float:
        """Uncontended serialization + propagation time for one transfer."""
        return self.latency_ns + size_bytes / self.bandwidth_gbps


@dataclass
class LinkFault:
    """Degradation state armed on a :class:`Link` by the chaos controller.

    - ``drop_rate``: probability one transfer attempt is lost on the
      wire; each loss is paid as a full retransmission (the attempt's
      serialization time and energy are spent again), bounded by
      ``max_retransmits`` so a transfer always terminates.
    - ``latency_multiplier``: scales every attempt's serialization time
      (signal-integrity retraining, FEC overhead, lane narrowing).
    - ``down_until_ns``: hard outage -- transfers issued before this
      simulated time stall until the link is back up, then proceed.

    The RNG is owned by the fault (seeded by the chaos controller), so
    the drop pattern is a pure function of the chaos seed and the
    deterministic order of transfers.
    """

    rng: random.Random = field(default_factory=lambda: random.Random(0))
    drop_rate: float = 0.0
    latency_multiplier: float = 1.0
    down_until_ns: Optional[float] = None
    max_retransmits: int = 8
    # counters (read by chaos reports)
    drops: int = 0
    stalled_transfers: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(f"drop rate must be in [0, 1), got {self.drop_rate}")
        if self.latency_multiplier < 1.0:
            raise ValueError("latency multiplier must be >= 1")
        if self.max_retransmits < 0:
            raise ValueError("max retransmits must be non-negative")

    def outage_remaining(self, now: float) -> float:
        if self.down_until_ns is None or self.down_until_ns <= now:
            return 0.0
        return self.down_until_ns - now

    def sample_attempts(self) -> int:
        """Total attempts (first try + retransmissions) for one transfer."""
        lost = 0
        while lost < self.max_retransmits and self.rng.random() < self.drop_rate:
            lost += 1
        self.drops += lost
        return 1 + lost


class Link:
    """One directed or shared channel between two interconnect endpoints."""

    def __init__(
        self,
        sim: Simulator,
        params: LinkParams = LinkParams(),
        name: str = "",
    ) -> None:
        self.sim = sim
        self.params = params
        self.name = name
        # priority arbitration: waiting sync/interrupt traffic overtakes
        # queued bulk transfers (the QoS the paper's small-message
        # argument presumes)
        self.channel = PriorityResource(sim, capacity=params.width_lanes, name=name)
        self.bytes_carried = 0
        self.messages_carried = 0
        self.energy_pj = 0.0
        # armed by repro.chaos (None = healthy link, zero overhead)
        self.fault: Optional[LinkFault] = None
        # armed by repro.telemetry.wiring.attach_link
        self.telemetry = None
        self.tel_queue = None
        self.tel_latency = None

    # ------------------------------------------------------------------
    def cost(self, size_bytes: int) -> float:
        """Analytic uncontended latency for ``size_bytes`` (ns)."""
        if size_bytes < 0:
            raise ValueError(f"negative transfer size {size_bytes}")
        return self.params.transfer_ns(size_bytes)

    def account(self, size_bytes: int) -> None:
        """Record traffic/energy without simulating (analytic sweeps)."""
        if size_bytes < 0:
            raise ValueError(f"negative transfer size {size_bytes}")
        self.bytes_carried += size_bytes
        self.messages_carried += 1
        self.energy_pj += size_bytes * self.params.energy_per_byte_pj

    def transfer(self, size_bytes: int, priority: int = 0):
        """Simulation process: occupy a lane for the serialization time.

        ``priority`` is the arbitration class of this transfer on the
        link's priority-ordered wait queue: when every lane is busy,
        waiting transfers are granted in ascending ``(priority,
        arrival-order)`` -- a *lower* value overtakes any queued transfer
        with a higher value, and equal values stay FIFO.  It never
        preempts a transfer already occupying a lane, and it does not
        change the serialization time itself.  Callers map
        :class:`~repro.interconnect.message.TransactionType.priority`
        onto it so sync/interrupt traffic overtakes bulk DMA.
        ``size_bytes`` must be non-negative.  Usage inside a process::

            yield from link.transfer(4096)
        """
        fault = self.fault
        attempts = 1
        multiplier = 1.0
        if fault is not None:
            stall = fault.outage_remaining(self.sim.now)
            if stall > 0:
                fault.stalled_transfers += 1
                yield Timeout(stall)
            attempts = fault.sample_attempts()
            multiplier = fault.latency_multiplier
        if self.telemetry is None:
            for _ in range(attempts):
                self.account(size_bytes)
                yield from self.channel.use(
                    self.cost(size_bytes) * multiplier, priority=priority
                )
            return
        start = self.sim.now
        self.tel_queue.set(float(self.channel.queue_length))
        for _ in range(attempts):
            self.account(size_bytes)
            yield from self.channel.use(
                self.cost(size_bytes) * multiplier, priority=priority
            )
        self.tel_queue.set(float(self.channel.queue_length))
        self.tel_latency.record(self.sim.now - start)

    @property
    def utilization(self) -> float:
        return self.channel.utilization()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} {self.params.bandwidth_gbps}GB/s>"
