"""Point-to-point links with bandwidth, latency, energy and contention."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import PriorityResource, Simulator


@dataclass(frozen=True)
class LinkParams:
    """Physical link characteristics.

    Defaults model an on-chip AXI-class layer; inter-chip and inter-chassis
    layers use the constructors in :mod:`repro.interconnect.topology` with
    progressively higher latency and energy per byte (the paper's
    "each level up the tree adds one hop" cost structure).
    """

    bandwidth_gbps: float = 16.0      # GB/s
    latency_ns: float = 10.0          # propagation + arbitration
    energy_per_byte_pj: float = 1.0   # transport energy
    width_lanes: int = 1              # parallel channels (capacity)

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_gbps}")
        if self.latency_ns < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_ns}")
        if self.energy_per_byte_pj < 0:
            raise ValueError("energy per byte must be non-negative")
        if self.width_lanes < 1:
            raise ValueError("need at least one lane")

    def transfer_ns(self, size_bytes: int) -> float:
        """Uncontended serialization + propagation time for one transfer."""
        return self.latency_ns + size_bytes / self.bandwidth_gbps


class Link:
    """One directed or shared channel between two interconnect endpoints."""

    def __init__(
        self,
        sim: Simulator,
        params: LinkParams = LinkParams(),
        name: str = "",
    ) -> None:
        self.sim = sim
        self.params = params
        self.name = name
        # priority arbitration: waiting sync/interrupt traffic overtakes
        # queued bulk transfers (the QoS the paper's small-message
        # argument presumes)
        self.channel = PriorityResource(sim, capacity=params.width_lanes, name=name)
        self.bytes_carried = 0
        self.messages_carried = 0
        self.energy_pj = 0.0
        # armed by repro.telemetry.wiring.attach_link
        self.telemetry = None
        self.tel_queue = None
        self.tel_latency = None

    # ------------------------------------------------------------------
    def cost(self, size_bytes: int) -> float:
        """Analytic uncontended latency for ``size_bytes`` (ns)."""
        if size_bytes < 0:
            raise ValueError(f"negative transfer size {size_bytes}")
        return self.params.transfer_ns(size_bytes)

    def account(self, size_bytes: int) -> None:
        """Record traffic/energy without simulating (analytic sweeps)."""
        self.bytes_carried += size_bytes
        self.messages_carried += 1
        self.energy_pj += size_bytes * self.params.energy_per_byte_pj

    def transfer(self, size_bytes: int, priority: int = 0):
        """Simulation process: occupy a lane for the serialization time.

        Lower ``priority`` values win arbitration when the link is
        contended.  Usage inside a process::

            yield from link.transfer(4096)
        """
        self.account(size_bytes)
        if self.telemetry is None:
            yield from self.channel.use(self.cost(size_bytes), priority=priority)
            return
        start = self.sim.now
        self.tel_queue.set(float(self.channel.queue_length))
        yield from self.channel.use(self.cost(size_bytes), priority=priority)
        self.tel_queue.set(float(self.channel.queue_length))
        self.tel_latency.record(self.sim.now - start)

    @property
    def utilization(self) -> float:
        return self.channel.utilization()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} {self.params.bandwidth_gbps}GB/s>"
