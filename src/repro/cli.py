"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``info``        package inventory and version,
- ``machine``     build a machine and report its hierarchy metrics,
- ``power``       the Section 1 exascale power extrapolation,
- ``demo``        a short adaptive-runtime run with a timeline,
- ``trace``       run a preset with telemetry, export a Perfetto trace,
- ``metrics``     run a preset with telemetry, dump the metrics snapshot,
- ``experiment``  run one DESIGN.md experiment's bench and print its tables,
- ``chaos``       inject faults into a run and verify the runtime self-heals,
- ``checkpoint``  snapshot/restore survival: save, restore, ls, correlated
                  kill-and-restore experiment, MTBF x interval Daly sweep,
- ``jobs``        run a multi-tenant job mix and report per-job outcomes,
- ``serve``       open-loop request serving with admission control, dynamic
                  batching and SLO-driven elastic reconfiguration,
- ``inspect``     traced serving run -> critical-path breakdown, top-K
                  slowest requests and the SLO burn-rate alert timeline,
- ``bench``       wall-clock performance suite -> canonical BENCH_perf.json,
- ``daemon``      always-on service mode: one live machine behind a
                  line-delimited-JSON control plane (unix socket / HTTP),
- ``client``      speak the daemon protocol from the command line.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_info(args: argparse.Namespace) -> int:
    import repro

    print(f"repro {repro.__version__} -- ECOSCALE (DATE 2016) reproduction")
    print(__doc__.split("Commands:")[0].strip())
    packages = [
        ("repro.sim", "discrete-event simulation kernel"),
        ("repro.memory", "UNIMEM memory system (pages, caches, SMMU)"),
        ("repro.interconnect", "multi-layer interconnect + topologies + DMA"),
        ("repro.fabric", "reconfigurable fabric, bitstreams, floorplanning"),
        ("repro.hls", "HLS: kernel IR, estimation, design-space exploration"),
        ("repro.opencl", "OpenCL-style API with ECOSCALE extensions"),
        ("repro.mpi", "communicators, collectives, topologies, placement"),
        ("repro.pgas", "NUMA-aware allocation and page migration"),
        ("repro.apps", "HPC workloads (stencil, matmul, MC, CART, DAGs)"),
        ("repro.energy", "energy accounting + exascale extrapolation"),
        ("repro.core", "Workers, Compute Nodes, UNILOGIC, runtime, middleware"),
        ("repro.chaos", "machine-wide fault injection and chaos experiments"),
        ("repro.telemetry", "metrics registry, tracer, structured events"),
        ("repro.serving", "traffic generation, admission, batching, autoscaling"),
    ]
    print("\npackages:")
    for name, desc in packages:
        print(f"  {name:20s} {desc}")
    return 0


def _cmd_machine(args: argparse.Namespace) -> int:
    from repro.core import ComputeNodeParams, Machine, MachineParams
    from repro.sim import Simulator

    machine = Machine(
        Simulator(),
        MachineParams(
            num_nodes=args.nodes,
            node=ComputeNodeParams(
                num_workers=args.workers,
                intra_fanout=args.intra_fanout,
            ),
        ),
    )
    print(f"machine: {args.nodes} compute nodes x {args.workers} workers "
          f"= {machine.total_workers} workers")
    print(f"max worker-to-worker hop distance: {machine.max_hop_distance()}")
    for size in (64, 4096, 262144):
        r = machine.world.allreduce(size)
        print(f"allreduce {size:>7d} B: {r.latency_ns / 1000:9.1f} us, "
              f"{r.rounds} rounds, {r.bytes_moved} bytes moved")
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    from repro.energy import (
        GREEN500_2015_LEADER,
        TIANHE2,
        efficiency_required_for,
        extrapolate_power_mw,
    )

    print("exaflop power extrapolation (paper Section 1):")
    for ref in (TIANHE2, GREEN500_2015_LEADER):
        mw = extrapolate_power_mw(ref, target_flops=args.exaflops * 1e18)
        print(f"  from {ref.name:10s} ({ref.gflops_per_watt:5.2f} GFLOPS/W): "
              f"{mw:8.0f} MW")
    need = efficiency_required_for(args.exaflops * 1e18, args.budget_mw)
    print(f"  required for a {args.budget_mw:.0f} MW facility: "
          f"{need:.0f} GFLOPS/W")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.apps import make_layered_dag
    from repro.core import ComputeNode
    from repro.core.runtime import ExecutionEngine
    from repro.presets import board_node, compiled_suite
    from repro.sim import Simulator, Tracer, render_timeline

    print("compiling the kernel suite through the HLS flow...")
    registry, library = compiled_suite(max_variants=1)
    sim = Simulator()
    node = ComputeNode(sim, board_node(workers=args.workers))
    tracer = Tracer(sim)
    engine = ExecutionEngine(
        node, registry, library, use_daemon=True, daemon_period_ns=100_000.0,
        tracer=tracer,
    )
    graph = make_layered_dag(
        layers=args.layers, width=args.width, num_workers=args.workers,
        functions=("saxpy", "stencil5", "montecarlo"), seed=args.seed,
    )
    print(f"running {len(graph)} tasks on {args.workers} workers...")
    report = engine.run_graph(graph)
    print(f"  makespan : {report.makespan_ns / 1e6:.3f} ms")
    print(f"  devices  : {report.sw_calls} sw / {report.hw_calls} hw "
          f"({report.hw_fraction:.0%} hardware)")
    print(f"  reconfigs: {report.reconfigurations}")
    print(f"  energy   : {report.energy_pj / 1e9:.3f} mJ")
    if engine.daemon is not None:
        print(f"  daemon loaded: {engine.daemon.stats.functions_loaded}")
    print("\nper-worker timeline:")
    print(render_timeline(tracer, width=64))
    return 0


def _telemetry_run(args: argparse.Namespace):
    """Shared by ``trace``/``metrics``: one instrumented runtime run.

    Builds a Compute Node from the named preset, attaches a telemetry
    hub to every layer (kernel, NoC, memories, fabrics, runtime), and
    drives a layered DAG through the adaptive runtime with the
    reconfiguration daemon on -- so the trace/snapshot covers the
    interconnect, memory, fabric and runtime layers in one run.
    """
    from repro.apps import make_layered_dag
    from repro.core import ComputeNode
    from repro.core.runtime import ExecutionEngine
    from repro.presets import compiled_suite, node_preset
    from repro.sim import Simulator
    from repro.telemetry import Telemetry, attach_simulator

    print(f"compiling the kernel suite, building preset {args.preset!r}...",
          file=sys.stderr)
    registry, library = compiled_suite(max_variants=1)
    sim = Simulator()
    hub = Telemetry(sim)
    attach_simulator(hub, sim)
    node = ComputeNode(sim, node_preset(args.preset))
    node.attach_telemetry(hub)
    engine = ExecutionEngine(
        node, registry, library,
        use_daemon=True, daemon_period_ns=100_000.0, telemetry=hub,
    )
    graph = make_layered_dag(
        layers=args.layers, width=args.width, num_workers=len(node),
        functions=("saxpy", "stencil5", "montecarlo"), seed=args.seed,
    )
    print(f"running {len(graph)} tasks on {len(node)} workers...",
          file=sys.stderr)
    report = engine.run_graph(graph)
    return hub, report


def _write_or_print(text: str, out: Optional[str]) -> None:
    if out:
        with open(out, "w") as fh:
            fh.write(text)
        print(f"wrote {out}", file=sys.stderr)
    else:
        print(text)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import chrome_trace_json, events_json, snapshot_json

    hub, report = _telemetry_run(args)
    _write_or_print(chrome_trace_json(hub), args.out)
    if args.metrics_out:
        _write_or_print(snapshot_json(hub), args.metrics_out)
    if args.events_out:
        _write_or_print(events_json(hub, indent=2), args.events_out)
    spans = len(hub.tracer.closed_spans())
    print(f"  makespan : {report.makespan_ns / 1e6:.3f} ms", file=sys.stderr)
    print(f"  spans    : {spans} across {len(hub.tracer.lanes())} lanes",
          file=sys.stderr)
    print(f"  events   : {len(hub.events)} ({hub.events.dropped} dropped)",
          file=sys.stderr)
    print("load the trace in https://ui.perfetto.dev or chrome://tracing",
          file=sys.stderr)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.telemetry import prometheus_text, snapshot_csv, snapshot_json

    hub, report = _telemetry_run(args)
    text = {
        "json": snapshot_json,
        "csv": snapshot_csv,
        "prom": prometheus_text,
    }[args.format](hub)
    _write_or_print(text, args.out)
    print(f"  makespan : {report.makespan_ns / 1e6:.3f} ms", file=sys.stderr)
    print(f"  metrics  : {len(hub.registry.snapshot())} series",
          file=sys.stderr)
    return 0


_EXPERIMENT_FILES = {
    "FIG1": "bench_fig1_partitioning.py",
    "FIG2": "bench_fig2_framework.py",
    "FIG3": "bench_fig3_architecture.py",
    "FIG4": "bench_fig4_worker.py",
    "FIG5": "bench_fig5_runtime.py",
    "CLAIM-GW": "bench_claim_exascale.py",
    "CLAIM-SHARE": "bench_claim_sharing.py",
    "CLAIM-COMPRESS": "bench_claim_compression.py",
    "CLAIM-CHAIN": "bench_claim_chaining.py",
    "CLAIM-LAZY": "bench_claim_lazy.py",
    "CLAIM-MODEL": "bench_claim_models.py",
    "CLAIM-HLS": "bench_claim_hls.py",
    "CLAIM-PGAS": "bench_claim_hybrid.py",
    "CLAIM-SORT": "bench_claim_sorting.py",
    "CLAIM-RESIL": "bench_claim_resilience.py",
    "CLAIM-IRREGULAR": "bench_claim_irregular.py",
    "ABL": "bench_ablations.py",
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    import subprocess
    from pathlib import Path

    key = args.id.upper()
    if key not in _EXPERIMENT_FILES:
        print(f"unknown experiment {args.id!r}; choose from:")
        for name in _EXPERIMENT_FILES:
            print(f"  {name}")
        return 2
    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    bench = bench_dir / _EXPERIMENT_FILES[key]
    if not bench.exists():
        print(f"bench file {bench} not found (run from a source checkout)")
        return 2
    cmd = [sys.executable, "-m", "pytest", str(bench), "-s", "-q",
           "--benchmark-disable"]
    return subprocess.call(cmd)


def _shard_shape(args: argparse.Namespace) -> tuple:
    """(num_nodes, partitions) for a CLI-requested sharded run."""
    partitions = args.partitions if args.partitions is not None else 1
    nodes = args.nodes if args.nodes is not None else max(2, partitions)
    return nodes, partitions


def _warm_start(args: argparse.Namespace):
    """The experiment ``warm_start`` argument from --warm-start [SNAP]."""
    value = getattr(args, "warm_start", None)
    if value is None:
        return False
    return value  # True (bare flag) or a snapshot path


def _add_warm_start_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--warm-start", nargs="?", const=True, default=None, metavar="SNAPSHOT",
        help="skip bring-up via the template cache; with a SNAPSHOT path, "
             "verify the topology against a saved daemon snapshot first "
             "(reports are bit-identical either way)")


def _shard_requested(args: argparse.Namespace) -> bool:
    return args.partitions is not None or args.nodes is not None


def _print_sync(report: dict) -> None:
    sync = report["sync"]
    print(f"  shard sync       : {sync['windows']} windows, "
          f"{sync['messages']} bridge messages, {sync['events']} events")


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import run_chaos_experiment

    if _shard_requested(args):
        from repro.shard import report_json, run_sharded_chaos

        nodes, partitions = _shard_shape(args)
        print(f"compiling the kernel suite, running sharded chaos preset "
              f"{args.preset!r} ({nodes} nodes, {partitions} partitions, "
              f"seed {args.seed})...", file=sys.stderr)
        report = run_sharded_chaos(
            args.preset, seed=args.seed, num_nodes=nodes,
            partitions=partitions, backend=args.backend,
        )
        if args.events_out:
            _write_or_print(report_json(report, indent=2), args.events_out)
        print(f"  baseline makespan : "
              f"{report['baseline_makespan_ns'] / 1e6:.3f} ms (worst node)")
        print(f"  chaos makespan    : "
              f"{report['chaos_makespan_ns'] / 1e6:.3f} ms (worst node)")
        print(f"  faults injected   : {report['faults_injected']} "
              f"across {nodes} nodes")
        print(f"  tasks retried     : {report['tasks_retried']}")
        print(f"  unrecovered tasks : {report['tasks_unrecovered']}")
        _print_sync(report)
        if report["integrity_ok"]:
            print("  integrity         : OK -- every node healed its faults")
            return 0
        print("  integrity         : FAILED -- tasks lost or workload mismatch")
        return 1

    print(f"compiling the kernel suite, running chaos preset {args.preset!r} "
          f"(seed {args.seed})...", file=sys.stderr)
    report = run_chaos_experiment(
        args.preset, seed=args.seed, warm_start=_warm_start(args)
    )
    if args.events_out:
        _write_or_print(report.events_json(indent=2), args.events_out)
    chaos, base = report.chaos, report.baseline
    print(f"  baseline makespan : {base.makespan_ns / 1e6:.3f} ms "
          f"({base.tasks} tasks, no faults)")
    print(f"  chaos makespan    : {chaos.makespan_ns / 1e6:.3f} ms "
          f"({report.slowdown:.2f}x slowdown)")
    print(f"  faults injected   : {report.faults_injected} "
          f"(of {report.faults_planned} planned)")
    print(f"  worker failures   : {chaos.worker_failures} "
          f"(mean detection {chaos.mean_detection_ns / 1e3:.1f} us, "
          f"mean recovery {chaos.mean_recovery_ns / 1e3:.1f} us)")
    print(f"  tasks retried     : {chaos.tasks_retried} "
          f"({chaos.work_lost_ns / 1e3:.1f} us of work lost)")
    print(f"  fabric recoveries : {chaos.fabric_recoveries} "
          f"({chaos.fabric_recovery_failures} failed)")
    print(f"  unrecovered tasks : {chaos.tasks_unrecovered}")
    if report.integrity_ok:
        print("  integrity         : OK -- all tasks completed despite faults")
        return 0
    print("  integrity         : FAILED -- tasks lost or workload mismatch")
    return 1


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from repro.chaos.checkpoint_experiment import (
        restore_from_snapshot,
        run_checkpoint_interval_sweep,
        run_checkpoint_restore_experiment,
        submit_workload,
        workload_spec,
        _build_machine,
    )
    from repro.core.runtime import FaultTolerancePolicy
    from repro.core.runtime.checkpoint import (
        CheckpointManager,
        CheckpointPolicy,
        SnapshotStore,
    )

    if args.action == "ls":
        store = SnapshotStore(args.dir)
        paths = store.list()
        if not paths:
            print(f"no snapshots under {args.dir}")
            return 0
        print("  seq   taken-at        jobs  done  file")
        for path in paths:
            s = store.load(path)
            print(f"  {s.seq:>3d}  {s.taken_at_ns / 1e6:>9.3f} ms  "
                  f"{len(s.jobs):>4d}  {s.tasks_completed:>4d}  {path.name}")
        return 0

    if args.action == "save":
        print(f"compiling the kernel suite, checkpointing preset "
              f"{args.preset!r} every {args.interval / 1e3:.0f} us...",
              file=sys.stderr)
        workload = workload_spec(args.preset, seed=args.seed)
        _, _, _, manager = _build_machine(
            workload,
            fault_tolerance=FaultTolerancePolicy(),
        )
        submit_workload(manager, workload)
        ckpt = CheckpointManager(
            manager,
            CheckpointPolicy(interval_ns=args.interval),
            store=SnapshotStore(args.dir),
            workload=workload,
        )
        ckpt.start()
        if args.until is not None:
            manager.sim.run(until=args.until)
        else:
            manager.run()
        ckpt.stop()
        print(f"  snapshots : {len(ckpt.snapshots)} written to {args.dir}")
        for s in ckpt.snapshots:
            print(f"    seq {s.seq} at {s.taken_at_ns / 1e6:.3f} ms "
                  f"({s.tasks_completed} tasks done)")
        return 0

    if args.action == "restore":
        store = SnapshotStore(args.dir)
        snapshot = (
            store.load(args.snapshot) if args.snapshot else store.load_latest()
        )
        if snapshot is None:
            print(f"no snapshots under {args.dir}")
            return 1
        print(f"restoring seq {snapshot.seq} "
              f"(taken at {snapshot.taken_at_ns / 1e6:.3f} ms, "
              f"{snapshot.tasks_completed} tasks already done)...",
              file=sys.stderr)
        manager, handles = restore_from_snapshot(
            snapshot, fault_tolerance=FaultTolerancePolicy()
        )
        report = manager.run()
        if args.out:
            _write_or_print(report.json(indent=2), args.out)
        print(f"  resumed at       : {snapshot.taken_at_ns / 1e6:.3f} ms")
        print(f"  finished at      : "
              f"{manager.sim.now / 1e6:.3f} ms simulated")
        for handle in handles:
            outcome = report.job(handle.job_id)
            print(f"  job {handle.job_id}: {handle.tasks_skipped} skipped, "
                  f"{outcome.report.tasks - handle.tasks_skipped} replayed, "
                  f"{outcome.report.tasks_unrecovered} unrecovered")
        if report.tasks_unrecovered:
            print(f"  WARNING: {report.tasks_unrecovered} unrecovered tasks")
            return 1
        return 0

    if args.action == "experiment":
        print(f"compiling the kernel suite, kill-and-restore on preset "
              f"{args.preset!r} (domain {args.domain}, seed {args.seed})...",
              file=sys.stderr)
        report = run_checkpoint_restore_experiment(
            args.preset,
            seed=args.seed,
            domain=args.domain,
            store_dir=args.dir if args.dir != "checkpoints" else None,
        )
        if args.events_out:
            _write_or_print(report.events_json(indent=2), args.events_out)
        d = report.to_dict()
        print(f"  baseline makespan : {report.baseline_makespan_ns / 1e6:.3f} ms "
              f"({report.baseline_tasks} tasks)")
        print(f"  domain killed     : {report.domain} "
              f"(workers {report.domain_workers}) at "
              f"{report.kill_ns / 1e6:.3f} ms, run abandoned at "
              f"{report.abandoned_ns / 1e6:.3f} ms")
        print(f"  recovery point    : seq {report.snapshot_seq} at "
              f"{report.snapshot_at_ns / 1e6:.3f} ms "
              f"({report.tasks_checkpointed} tasks checkpointed, "
              f"{report.lost_window_ns / 1e6:.3f} ms of progress lost)")
        print(f"  restored          : {d['restore']['tasks_replayed']} tasks "
              f"replayed, finished at {report.restored_makespan_ns / 1e6:.3f} ms")
        if report.integrity_ok:
            print("  integrity         : OK -- every task checkpointed or replayed")
            return 0
        print("  integrity         : FAILED -- work lost across the restore")
        return 1

    # action == "sweep"
    print(f"sweeping MTBF x checkpoint interval (seed {args.seed}, "
          f"{args.trials} trials per cell)...", file=sys.stderr)
    report = run_checkpoint_interval_sweep(seed=args.seed, trials=args.trials)
    if args.out:
        _write_or_print(report.events_json(indent=2), args.out)
    print(f"  checkpoint cost : {report.checkpoint_cost_ns / 1e3:.1f} us "
          f"(measured from a real run)" if report.measured_cost_ns
          else f"  checkpoint cost : {report.checkpoint_cost_ns / 1e3:.1f} us")
    print("  MTBF        daly-interval   best-factor   goodput(daly)  verdict")
    for o in report.optima:
        print(f"  {o['mtbf_ns'] / 1e6:>6.1f} ms  {o['daly_interval_ns'] / 1e3:>10.1f} us "
              f"{o['best_factor']:>11.2f}x  {o['daly_goodput']:>12.4f}  "
              f"{'OK' if o['within_one_step'] else 'OFF-OPTIMUM'}")
    if report.daly_validated:
        print("  Daly optimum validated: goodput peaks within one sweep step")
        return 0
    print("  Daly optimum NOT validated")
    return 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.experiments import run_jobs_experiment
    from repro.presets import job_preset

    if _shard_requested(args):
        from repro.shard import report_json, run_sharded_jobs

        nodes, partitions = _shard_shape(args)
        print(f"compiling the kernel suite, running sharded job mix "
              f"{args.preset!r} ({nodes} nodes, {partitions} partitions, "
              f"backend {args.backend})...", file=sys.stderr)
        report = run_sharded_jobs(
            args.preset, seed=args.seed, num_nodes=nodes,
            partitions=partitions, backend=args.backend,
        )
        if args.out:
            _write_or_print(report_json(report, indent=2), args.out)
        print(f"  machine makespan : {report['makespan_ns'] / 1e6:.3f} ms "
              f"({report['tasks']} tasks across {nodes} nodes)")
        print(f"  energy           : {report['energy_pj'] / 1e9:.3f} mJ")
        _print_sync(report)
        if report["tasks_unrecovered"]:
            print(f"  WARNING: {report['tasks_unrecovered']} unrecovered tasks")
            return 1
        return 0

    mix = job_preset(args.preset)
    print(f"compiling the kernel suite, running job mix {args.preset!r} "
          f"({len(mix.jobs)} jobs on node preset {mix.node!r})...",
          file=sys.stderr)
    report = run_jobs_experiment(
        args.preset, seed=args.seed, warm_start=_warm_start(args)
    )
    if args.out:
        _write_or_print(report.json(indent=2), args.out)
    print(f"  machine makespan : {report.makespan_ns / 1e6:.3f} ms "
          f"({report.tasks} tasks across {len(report.jobs)} jobs)")
    print(f"  throughput       : "
          f"{report.aggregate_throughput_tasks_per_ms:.1f} tasks/ms aggregate")
    print(f"  fairness (Jain)  : {report.fairness_index():.3f}")
    print(f"  energy           : {report.energy_pj / 1e9:.3f} mJ, "
          f"{report.reconfigurations} reconfigurations")
    print("  job  policy     prio  tasks  sw/hw      latency      tasks/ms")
    for job in report.jobs:
        r = job.report
        print(f"  {job.job_id:>3d}  {job.policy:<10s} {job.priority:>4d} "
              f"{r.tasks:>6d}  {r.sw_calls:>3d}/{r.hw_calls:<3d} "
              f"{job.latency_ns / 1e6:>9.3f} ms "
              f"{job.throughput_tasks_per_ms:>11.1f}")
    if report.tasks_unrecovered:
        print(f"  WARNING: {report.tasks_unrecovered} unrecovered tasks")
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import run_serving_experiment

    if _shard_requested(args):
        from repro.shard import report_json, run_sharded_serving

        nodes, partitions = _shard_shape(args)
        print(f"compiling the kernel suite, serving sharded preset "
              f"{args.preset!r} ({nodes} nodes, {partitions} partitions, "
              f"seed {args.seed})...", file=sys.stderr)
        report = run_sharded_serving(
            args.preset, seed=args.seed, num_nodes=nodes,
            partitions=partitions, backend=args.backend,
        )
        if args.out:
            _write_or_print(report_json(report, indent=2), args.out)
        print(f"  horizon          : {report['horizon_ns'] / 1e6:.3f} ms "
              f"simulated (worst node)")
        print(f"  requests         : {report['offered']} offered, "
              f"{report['admitted']} admitted, {report['shed']} shed, "
              f"{report['completed']} completed across {nodes} nodes")
        print(f"  batching         : {report['batches']} batches")
        _print_sync(report)
        if report["unrecovered"]:
            print(f"  WARNING: {report['unrecovered']} admitted requests "
                  f"never completed")
            return 1
        return 0

    print(
        f"compiling the kernel suite, serving preset {args.preset!r} "
        f"(seed {args.seed})...",
        file=sys.stderr,
    )
    report = run_serving_experiment(
        args.preset, seed=args.seed, warm_start=_warm_start(args)
    )
    _write_or_print(report.json(indent=2), args.out)
    print(f"  horizon          : {report.horizon_ns / 1e6:.3f} ms simulated")
    print(f"  requests         : {report.offered} offered, "
          f"{report.admitted} admitted, {report.shed} shed "
          f"({report.shed_rate:.1%}), {report.completed} completed")
    print(f"  batching         : {report.batches} batches, "
          f"mean size {report.mean_batch_size:.2f} "
          f"({report.flushes_full} full / {report.flushes_timeout} timeout)")
    a = report.autoscaler
    print(f"  autoscaler       : {a['regions_configured']} regions configured "
          f"({a['loads']} loads, {a['replicas']} replicas, "
          f"{a['evictions']} evictions) over {a['evaluations']} periods")
    print("  tenant        p50          p95          p99        goodput   shed")
    for name, t in sorted(report.tenants.items()):
        lat = t["latency_ns"]
        print(f"  {name:<12s} {lat['p50'] / 1e3:>8.1f} us  "
              f"{lat['p95'] / 1e3:>8.1f} us  {lat['p99'] / 1e3:>8.1f} us  "
              f"{t['goodput_rps']:>9.0f} rps  {t['shed_rate']:.1%}")
    if report.unrecovered:
        print(f"  WARNING: {report.unrecovered} admitted requests never completed")
        return 1
    return 0


def _cmd_daemon(args: argparse.Namespace) -> int:
    from repro.service.daemon import run_daemon

    socket_path = args.socket
    if socket_path is None and args.http is None:
        socket_path = "repro.sock"
    return run_daemon(
        socket_path=socket_path,
        http_port=args.http,
        http_host=args.host,
        preset=args.preset,
        seed=args.seed,
        window_ns=args.window_ns,
        telemetry=not args.no_telemetry,
        warm=not args.cold,
        snapshot_dir=args.snapshot_dir,
        restore=args.restore,
    )


def _cmd_client(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import ServiceClient, ServiceClientError

    frame = {"cmd": args.command}
    if args.command == "script" and args.args and not args.args.lstrip().startswith("{"):
        frame["path"] = args.args  # bare path shorthand
    elif args.args:
        try:
            extra = json.loads(args.args)
        except json.JSONDecodeError as exc:
            print(f"repro client: args must be a JSON object: {exc}",
                  file=sys.stderr)
            return 2
        if not isinstance(extra, dict):
            print("repro client: args must be a JSON object", file=sys.stderr)
            return 2
        frame.update(extra)
    client = ServiceClient(
        socket_path=args.socket if args.http is None else None,
        host=args.host,
        port=args.http,
        timeout=args.timeout,
    )
    try:
        with client:
            if args.command == "script":
                return _client_script(client, frame, args)
            reply = client.request(frame)
    except ServiceClientError as exc:
        print(f"repro client: {exc}", file=sys.stderr)
        return 1
    return _client_emit(reply, args)


def _client_emit(reply: dict, args: argparse.Namespace) -> int:
    import json

    # reports and metrics carry one big text payload; write it raw so the
    # output diffs byte-for-byte against batch-mode files
    if reply.get("ok") and args.out and "report" in reply:
        _write_or_print(reply["report"], args.out)
        rest = {k: v for k, v in reply.items() if k != "report"}
        print(json.dumps(rest, sort_keys=True))
    elif reply.get("ok") and args.out and "text" in reply:
        _write_or_print(reply["text"], args.out)
        rest = {k: v for k, v in reply.items() if k != "text"}
        print(json.dumps(rest, sort_keys=True))
    else:
        print(json.dumps(reply, sort_keys=True))
    return 0 if reply.get("ok") else 1


def _client_script(client, frame: dict, args: argparse.Namespace) -> int:
    """Run a .jsonl command script (one frame per line) through the daemon."""
    import json

    path = frame.get("path") or args.args
    if not path or not isinstance(path, str):
        print('repro client: script needs {"path": "commands.jsonl"}',
              file=sys.stderr)
        return 2
    frames = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line and not line.startswith("#"):
                frames.append(json.loads(line))
    replies = client.script(frames)
    failed = 0
    for reply in replies:
        print(json.dumps(reply, sort_keys=True))
        if not reply.get("ok"):
            failed += 1
    return 1 if failed else 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.core import ComputeNode
    from repro.core.runtime import ExecutionEngine
    from repro.presets import compiled_suite, node_preset, serving_preset
    from repro.serving import BurnRatePolicy, ServingGateway, TraceConfig
    from repro.sim import Simulator
    from repro.telemetry import Telemetry, validate_span_tree

    print(
        f"compiling the kernel suite, tracing preset {args.preset!r} "
        f"(seed {args.seed}, 1-in-{args.sample_every} sampling)...",
        file=sys.stderr,
    )
    scenario = serving_preset(args.preset)
    registry, library = compiled_suite(max_variants=2)
    sim = Simulator()
    # a hub only when an export asks for one: the traced run itself works
    # dark (spans land on the request tracer's standalone sink)
    hub = Telemetry(sim) if (args.trace_out or args.events_out) else None
    node = ComputeNode(sim, node_preset(scenario.node))
    if hub is not None:
        node.attach_telemetry(hub)
    engine = ExecutionEngine(
        node, registry, library, use_daemon=False, telemetry=hub,
    )
    gateway = ServingGateway(
        engine,
        scenario,
        seed=args.seed,
        scenario_name=args.preset,
        telemetry=hub,
        tracing=TraceConfig(
            sample_every=args.sample_every, top_k=args.top_k
        ),
        alerts=BurnRatePolicy(slo_scale=args.slo_scale),
    )
    report = gateway.run()
    if args.out:
        _write_or_print(report.json(indent=2), args.out)
    if args.trace_out or args.events_out:
        from repro.telemetry import chrome_trace_json, events_json

        if args.trace_out:
            _write_or_print(chrome_trace_json(hub), args.trace_out)
        if args.events_out:
            _write_or_print(events_json(hub, indent=2), args.events_out)

    tr, al = report.tracing, report.alerts
    sink = gateway.request_tracer.tracer
    traces = validate_span_tree(sink.spans)
    print(f"  requests : {report.offered} offered, {report.completed} "
          f"completed over {report.horizon_ns / 1e6:.3f} ms simulated")
    print(f"  traces   : {tr['sampled_traces']} sampled "
          f"({tr['violation_upgrades']} SLO upgrades), {tr['spans']} spans, "
          f"{traces} span trees validated")
    print(f"  analyzed : {tr['requests_analyzed']} requests "
          f"(breakdown is exact; sampling gates span emission only)")

    print("\n  critical path (per tenant, per stage):")
    print("  tenant        stage            count     mean        max    share")
    for tenant, block in sorted(tr["breakdown"].items()):
        for stage, cell in block["stages"].items():
            print(f"  {tenant:<12s}  {stage:<12s} {cell['count']:>9d} "
                  f"{cell['mean_ns'] / 1e3:>7.1f} us "
                  f"{cell['max_ns'] / 1e3:>7.1f} us  {cell['share']:>6.1%}")

    print(f"\n  top-{len(tr['top_slowest'])} slowest requests:")
    print("  request  tenant        function       latency  dominant stage")
    for row in tr["top_slowest"]:
        print(f"  #{row['request_id']:<6d} {row['tenant']:<12s}  "
              f"{row['function']:<10s} {row['latency_ns'] / 1e3:>9.1f} us  "
              f"{row['dominant_stage']} "
              f"({row['stages'][row['dominant_stage']] / 1e3:.1f} us, "
              f"sampled={row['sampled']})")

    policy = al["policy"]
    print(f"\n  burn-rate alerts: {al['fired']} fired, "
          f"{len(al['active'])} still active "
          f"(objective = {policy['slo_scale']:.0%} of SLO, "
          f"target {policy['target']:.0%})")
    if al["timeline"]:
        print("  ts            tenant        window  burn     event")
        for e in al["timeline"]:
            print(f"  {e['ts'] / 1e6:>9.3f} ms  {e['tenant']:<12s}  "
                  f"{e['window']:<6s} {e['burn']:>6.2f}   {e['event']}")
    else:
        print("  (no alert transitions -- the run stayed within budget)")
    if args.trace_out:
        print("load the trace in https://ui.perfetto.dev or chrome://tracing",
              file=sys.stderr)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro import perf

    def progress(name: str, entry: dict) -> None:
        print(f"  {name:<28s} {entry['wall_seconds']:>9.3f} s  "
              f"{entry['events_processed']:>9d} ev  "
              f"{entry['events_per_sec']:>12,.0f} ev/s", file=sys.stderr)

    mode = "quick" if args.quick else "full"
    print(f"running {mode} performance suite "
          f"(shard entries at {args.partitions} partitions)...",
          file=sys.stderr)
    payload = perf.run_benchmarks(quick=args.quick, only=args.only or None,
                                  progress=progress,
                                  partitions=args.partitions)
    with open(args.out, "w") as fh:
        fh.write(perf.to_json(payload))
    print(f"wrote {args.out}", file=sys.stderr)

    if args.compare:
        with open(args.compare) as fh:
            baseline = json.load(fh)
        for name in perf.new_benchmarks(payload, baseline):
            print(f"  new benchmark (not in baseline): {name}",
                  file=sys.stderr)
        failures = perf.compare(payload, baseline, threshold=args.threshold)
        if failures:
            print(f"PERFORMANCE REGRESSION vs {args.compare}:")
            for line in failures:
                print(f"  {line}")
            return 1
        print(f"no regressions vs {args.compare} "
              f"(threshold {args.threshold:.0%})", file=sys.stderr)
    return 0


def _add_shard_args(p: argparse.ArgumentParser) -> None:
    """The sharded-engine flags shared by jobs/serve/chaos.

    Passing either ``--partitions`` or ``--nodes`` selects the sharded
    engine; with neither, the legacy single-machine path runs unchanged.
    """
    p.add_argument("--partitions", type=int, default=None,
                   help="run the sharded engine with this many partitions")
    p.add_argument("--nodes", type=int, default=None,
                   help="Compute Nodes in the sharded machine "
                        "(default: max(2, partitions))")
    p.add_argument("--backend", default="auto",
                   choices=("auto", "inline", "process"),
                   help="where partitions execute (auto: processes when "
                        "multi-partition and multi-core)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ECOSCALE (DATE 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package inventory").set_defaults(fn=_cmd_info)

    p = sub.add_parser("machine", help="build a machine, report hierarchy metrics")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--workers", type=int, default=8)
    p.add_argument("--intra-fanout", type=int, default=None)
    p.set_defaults(fn=_cmd_machine)

    p = sub.add_parser("power", help="exascale power extrapolation")
    p.add_argument("--exaflops", type=float, default=1.0)
    p.add_argument("--budget-mw", type=float, default=20.0)
    p.set_defaults(fn=_cmd_power)

    p = sub.add_parser("demo", help="short adaptive-runtime run")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--layers", type=int, default=6)
    p.add_argument("--width", type=int, default=10)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=_cmd_demo)

    def add_telemetry_args(p: argparse.ArgumentParser) -> None:
        # keep in sync with repro.presets.NODE_PRESETS (not imported here:
        # parser construction must stay light for every subcommand)
        p.add_argument("preset", nargs="?", default="board",
                       choices=("board", "chassis", "hpc-board", "mini"),
                       help="node preset to run on")
        p.add_argument("--layers", type=int, default=6)
        p.add_argument("--width", type=int, default=10)
        p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("trace", help="instrumented run -> Perfetto trace JSON")
    add_telemetry_args(p)
    p.add_argument("--out", default="trace.json", help="trace file path")
    p.add_argument("--metrics-out", default=None,
                   help="also write the metrics snapshot JSON here")
    p.add_argument("--events-out", default=None,
                   help="also write the structured event log JSON here")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("metrics", help="instrumented run -> metrics snapshot")
    add_telemetry_args(p)
    p.add_argument("--format", choices=("json", "csv", "prom"), default="json")
    p.add_argument("--out", default=None, help="output path (default stdout)")
    p.set_defaults(fn=_cmd_metrics)

    p = sub.add_parser("experiment", help="run one DESIGN.md experiment")
    p.add_argument("id", help="experiment id, e.g. FIG1 or CLAIM-COMPRESS")
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser("chaos", help="fault-injection run + self-healing verdict")
    # keep in sync with repro.chaos.experiment.CHAOS_PRESETS (not imported
    # here: parser construction must stay light for every subcommand)
    p.add_argument("preset", nargs="?", default="board",
                   choices=("mini", "board", "board-transient", "chassis"),
                   help="chaos scenario to run")
    p.add_argument("--seed", type=int, default=0, help="chaos plan seed")
    p.add_argument("--events-out", default=None,
                   help="write the fault plan/injection JSON here")
    _add_shard_args(p)
    _add_warm_start_args(p)
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser(
        "checkpoint",
        help="checkpoint/restart: save, restore, ls, kill-and-restore, sweep",
    )
    p.add_argument("action",
                   choices=("save", "restore", "ls", "experiment", "sweep"),
                   help="save: checkpointed run -> snapshot dir; restore: "
                        "resume from the latest snapshot; ls: list snapshots; "
                        "experiment: kill a failure domain mid-run and "
                        "restore; sweep: MTBF x interval Daly validation")
    # keep in sync with repro.chaos.experiment.CHAOS_PRESETS (not imported
    # here: parser construction must stay light for every subcommand)
    p.add_argument("--preset", default="mini",
                   choices=("mini", "board", "board-transient", "chassis"),
                   help="chaos workload preset (save/experiment)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dir", default="checkpoints",
                   help="snapshot directory (save/restore/ls)")
    p.add_argument("--interval", type=float, default=100_000.0,
                   help="checkpoint cadence in ns (save)")
    p.add_argument("--until", type=float, default=None,
                   help="abandon the run at this sim time in ns (save; "
                        "default: run to completion)")
    p.add_argument("--snapshot", default=None,
                   help="explicit snapshot file to restore (default: latest)")
    p.add_argument("--domain", default="rack0",
                   help="failure domain to kill (experiment)")
    p.add_argument("--trials", type=int, default=48,
                   help="renewal trials per sweep cell (sweep)")
    p.add_argument("--out", default=None,
                   help="write the canonical report JSON here (restore/sweep)")
    p.add_argument("--events-out", default=None,
                   help="write the experiment verdict JSON here (experiment)")
    p.set_defaults(fn=_cmd_checkpoint)

    p = sub.add_parser("jobs", help="multi-tenant job mix -> per-job reports")
    # keep in sync with repro.presets.JOB_PRESETS (not imported here:
    # parser construction must stay light for every subcommand)
    p.add_argument("preset", nargs="?", default="mini",
                   choices=("mini", "board", "chassis"),
                   help="job mix to run")
    p.add_argument("--seed", type=int, default=0,
                   help="offset added to every job's graph seed")
    p.add_argument("--out", default=None,
                   help="write the canonical MachineReport JSON here")
    _add_shard_args(p)
    _add_warm_start_args(p)
    p.set_defaults(fn=_cmd_jobs)

    p = sub.add_parser(
        "serve",
        help="open-loop serving: traffic -> admission -> batching -> SLOs",
    )
    # keep in sync with repro.presets.SERVING_PRESETS (not imported here:
    # parser construction must stay light for every subcommand)
    p.add_argument("--preset", default="steady",
                   choices=("diurnal", "flash-crowd", "steady"),
                   help="serving scenario to run")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the arrival processes")
    p.add_argument("--out", default=None,
                   help="write the canonical ServingReport JSON here")
    _add_shard_args(p)
    _add_warm_start_args(p)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "inspect",
        help="traced serving run -> critical path, slowest requests, alerts",
    )
    # keep in sync with repro.presets.SERVING_PRESETS (not imported here:
    # parser construction must stay light for every subcommand)
    p.add_argument("--preset", default="steady",
                   choices=("diurnal", "flash-crowd", "steady"),
                   help="serving scenario to trace")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the arrival processes")
    p.add_argument("--sample-every", type=int, default=8,
                   help="head-sample 1 request in N (1 = trace everything)")
    p.add_argument("--top-k", type=int, default=5,
                   help="slowest requests surfaced in the report")
    p.add_argument("--slo-scale", type=float, default=0.1,
                   help="internal alert objective as a fraction of each "
                        "tenant's SLO (SRE objective < agreement)")
    p.add_argument("--out", default=None,
                   help="write the canonical ServingReport JSON here")
    p.add_argument("--trace-out", default=None,
                   help="also export the Perfetto trace JSON here")
    p.add_argument("--events-out", default=None,
                   help="also export the structured event log JSON here")
    p.set_defaults(fn=_cmd_inspect)

    p = sub.add_parser(
        "bench",
        help="wall-clock performance suite -> canonical BENCH_perf.json",
    )
    p.add_argument("--quick", action="store_true",
                   help="smaller iteration counts (CI smoke mode)")
    p.add_argument("--only", action="append", default=None, metavar="NAME",
                   help="run only this benchmark (repeatable)")
    p.add_argument("--out", default="BENCH_perf.json",
                   help="output path (default: BENCH_perf.json)")
    p.add_argument("--compare", default=None, metavar="BASELINE",
                   help="baseline BENCH_perf.json; exit 1 on regression")
    p.add_argument("--threshold", type=float, default=0.30,
                   help="relative slowdown tolerated by --compare")
    p.add_argument("--partitions", type=int, default=4,
                   help="partition count for the .shardN bench entries")
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "daemon",
        help="always-on service mode: live machine + JSON control plane",
    )
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="unix socket to serve the NDJSON protocol on "
                        "(default: repro.sock when --http is not given)")
    p.add_argument("--http", type=int, default=None, metavar="PORT",
                   help="also serve HTTP: GET /metrics, GET /status, POST /rpc")
    p.add_argument("--host", default="127.0.0.1", help="HTTP bind host")
    # keep in sync with repro.presets.SERVING_PRESETS (not imported here:
    # parser construction must stay light for every subcommand)
    p.add_argument("--preset", default="steady",
                   choices=("diurnal", "flash-crowd", "steady"),
                   help="default serving preset for submits")
    p.add_argument("--seed", type=int, default=0, help="default seed")
    p.add_argument("--window-ns", type=float, default=100_000.0,
                   help="control window: commands apply at these boundaries")
    p.add_argument("--snapshot-dir", default="service-snapshots",
                   help="where snapshot/restore persist session state")
    p.add_argument("--restore", default=None, metavar="SNAPSHOT",
                   help="replay this snapshot before serving")
    p.add_argument("--no-telemetry", action="store_true",
                   help="run epochs without a metrics hub")
    p.add_argument("--cold", action="store_true",
                   help="disable warm-start templates for epoch bring-up")
    p.set_defaults(fn=_cmd_daemon)

    p = sub.add_parser(
        "client",
        help="speak the daemon protocol: ping, submit, status, drain, ...",
    )
    p.add_argument("command",
                   choices=("ping", "status", "submit", "step", "run",
                            "report", "metrics", "events", "reconfigure",
                            "chaos", "snapshot", "restore", "drain",
                            "shutdown", "script"),
                   help="protocol command (script: run a .jsonl frame file)")
    p.add_argument("args", nargs="?", default=None,
                   help="JSON object of command arguments "
                        "(script: path to the .jsonl file)")
    p.add_argument("--socket", default="repro.sock", metavar="PATH",
                   help="daemon unix socket (default: repro.sock)")
    p.add_argument("--http", type=int, default=None, metavar="PORT",
                   help="talk HTTP POST /rpc instead of the unix socket")
    p.add_argument("--host", default="127.0.0.1", help="HTTP host")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="transport timeout in seconds")
    p.add_argument("--out", default=None,
                   help="write a reply's report/metrics payload here "
                        "(byte-identical to batch-mode files)")
    p.set_defaults(fn=_cmd_client)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        # a long bench/serve/chaos run interrupted at the terminal: one
        # clean line and the conventional 128+SIGINT exit code, never a
        # traceback (the daemon converts SIGINT into a drain before this)
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
