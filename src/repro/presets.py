"""Named configuration presets.

Downstream users should not need to hand-assemble WorkerParams /
ComputeNodeParams / MachineParams to get a sensible ECOSCALE machine;
these factories encode the configurations the paper's prototype plans
imply (Zynq-class Workers) and the scaling study uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.compute_node import ComputeNodeParams
from repro.core.machine import MachineParams
from repro.core.worker import FunctionRegistry, WorkerParams
from repro.fabric.module_library import ModuleLibrary
from repro.hls.kernels import (
    cart_split_kernel,
    fir_kernel,
    matmul_kernel,
    montecarlo_kernel,
    saxpy_kernel,
    stencil_kernel,
    vecadd_kernel,
)
from repro.hls.software import SoftwareCostModel
from repro.hls.synthesis import HlsTool, SynthesisConstraints
from repro.memory.cache import CacheGeometry
from repro.memory.dram import DramTiming


def zynq_worker() -> WorkerParams:
    """A Zynq UltraScale+-class Worker: 4xA53-ish cores, modest fabric."""
    return WorkerParams(
        cpu_cores=4,
        software=SoftwareCostModel(clock_ghz=1.5, issue_width=2.0),
        cache=CacheGeometry(size_bytes=1 << 20, line_bytes=64, associativity=16),
        dram=DramTiming(bandwidth_gbps=12.8, capacity_bytes=1 << 30),
        fabric_columns=60,
        fabric_rows=50,
        fabric_regions=2,
    )


def hpc_worker() -> WorkerParams:
    """A beefier future Worker: 8 fast cores, a large fabric, HBM-class
    bandwidth -- the 'integration capabilities of future technologies'."""
    return WorkerParams(
        cpu_cores=8,
        software=SoftwareCostModel(clock_ghz=2.5, issue_width=3.0),
        cache=CacheGeometry(size_bytes=4 << 20, line_bytes=64, associativity=16),
        dram=DramTiming(bandwidth_gbps=64.0, capacity_bytes=4 << 30),
        fabric_columns=120,
        fabric_rows=80,
        fabric_regions=4,
    )


def board_node(workers: int = 4, worker: WorkerParams = None) -> ComputeNodeParams:
    """One board: a handful of Workers on a single-level interconnect."""
    return ComputeNodeParams(
        num_workers=workers, worker=worker or zynq_worker()
    )


def chassis_node(workers: int = 16, fanout: int = 4) -> ComputeNodeParams:
    """A chassis-scale PGAS partition: two interconnect levels inside."""
    return ComputeNodeParams(
        num_workers=workers, worker=zynq_worker(), intra_fanout=fanout
    )


def testbench_machine() -> MachineParams:
    """The small machine the ECOSCALE project's prototype targets."""
    return MachineParams(num_nodes=2, node=board_node())


def petascale_machine() -> MachineParams:
    """A petascale-ish hierarchy: 4 chassis x 16 workers."""
    return MachineParams(
        num_nodes=4, node=chassis_node(), inter_node_fanouts=[4]
    )


def exascale_machine() -> MachineParams:
    """The deepest hierarchy the experiments sweep: 64 nodes, 3 levels."""
    return MachineParams(
        num_nodes=64,
        node=chassis_node(workers=8, fanout=4),
        inter_node_fanouts=[4, 4, 4],
    )


#: Named Compute-Node presets the CLI's runtime commands accept
#: (``python -m repro trace <preset>`` / ``metrics <preset>``).
NODE_PRESETS = {
    "mini": lambda: board_node(workers=2),
    "board": lambda: board_node(),
    "hpc-board": lambda: board_node(worker=hpc_worker()),
    "chassis": lambda: chassis_node(),
}


def node_preset(name: str) -> ComputeNodeParams:
    """Resolve one :data:`NODE_PRESETS` entry by name."""
    if name not in NODE_PRESETS:
        known = ", ".join(sorted(NODE_PRESETS))
        raise KeyError(f"unknown preset {name!r}; choose from: {known}")
    return NODE_PRESETS[name]()


def build_preset_node(sim, name: str, warm: bool = False, node_id: int = 0):
    """Build the Compute Node for one preset, optionally warm-started.

    ``warm=True`` routes bring-up through the shard layer's process-wide
    :class:`~repro.shard.bringup.TemplateCache`: the pure-function parts
    of bring-up (tile grid, region budget, NUMA distances, routes) are
    computed once per node shape and shared, so repeated experiments on
    the same topology skip the expensive part.  Templated builds are
    bit-identical to cold ones, so warm starts never change reports.
    """
    params = node_preset(name)
    if warm:
        from repro.shard.bringup import build_node, shared_template_cache

        return build_node(sim, params, node_id=node_id, cache=shared_template_cache())
    from repro.core import ComputeNode

    return ComputeNode(sim, params, node_id=node_id)


@dataclass(frozen=True)
class JobSpec:
    """One tenant job of a multi-job scenario."""

    policy: str                 # repro.core.runtime.POLICIES key
    priority: int = 1
    layers: int = 4
    width: int = 8
    graph_seed: int = 1
    dataflow: bool = False

    def __post_init__(self) -> None:
        if self.priority < 1:
            raise ValueError("priority must be >= 1")
        if self.layers < 1 or self.width < 1:
            raise ValueError("graph dimensions must be positive")


@dataclass(frozen=True)
class JobMix:
    """A named multi-tenant scenario: machine preset + job stream."""

    node: str                   # NODE_PRESETS key
    jobs: Tuple[JobSpec, ...]


#: Named multi-job scenarios ``python -m repro jobs <preset>`` accepts.
#: Every mix runs >= 3 concurrent jobs with distinct policies; ``mini``
#: is the CI smoke configuration.
JOB_PRESETS = {
    "mini": JobMix(
        node="mini",
        jobs=(
            JobSpec("greedy-hw", priority=2, layers=3, width=6, graph_seed=1),
            JobSpec("energy", priority=1, layers=3, width=6, graph_seed=2),
            JobSpec("locality", priority=1, layers=3, width=6, graph_seed=3),
        ),
    ),
    "board": JobMix(
        node="board",
        jobs=(
            JobSpec("greedy-hw", priority=2, graph_seed=1),
            JobSpec("energy", priority=1, graph_seed=2),
            JobSpec("locality", priority=1, graph_seed=3, dataflow=True),
        ),
    ),
    "chassis": JobMix(
        node="chassis",
        jobs=(
            JobSpec("greedy-hw", priority=4, layers=6, width=16, graph_seed=1),
            JobSpec("greedy-hw", priority=1, layers=6, width=16, graph_seed=2),
            JobSpec("energy", priority=2, layers=4, width=12, graph_seed=3),
            JobSpec("locality", priority=1, layers=4, width=12, graph_seed=4),
        ),
    ),
}


def job_preset(name: str) -> JobMix:
    """Resolve one :data:`JOB_PRESETS` entry by name."""
    if name not in JOB_PRESETS:
        known = ", ".join(sorted(JOB_PRESETS))
        raise KeyError(f"unknown job preset {name!r}; choose from: {known}")
    return JOB_PRESETS[name]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic contract in a serving scenario.

    ``rate_rps`` / ``admit_rate_rps`` are requests per second of
    *simulated* time.  ``arrival`` picks the generator in
    :mod:`repro.serving.arrivals` (poisson | bursty | diurnal | trace).
    """

    name: str
    arrival: str = "poisson"
    rate_rps: float = 100_000.0
    requests: int = 100
    functions: Tuple[str, ...] = ("saxpy",)
    items_range: Tuple[int, int] = (512, 2048)
    policy: str = "greedy-hw"
    priority: int = 1
    slo_ns: float = 500_000.0
    admit_rate_rps: float = 300_000.0
    admit_burst: float = 16.0
    # bursty (MMPP) shape
    burst_multiplier: float = 8.0
    burst_fraction: float = 0.25
    # diurnal ramp shape (multiples of rate_rps)
    diurnal_low: float = 0.3
    diurnal_high: float = 2.0
    # trace replay (absolute offsets from stream start)
    trace_offsets_ns: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.arrival not in ("poisson", "bursty", "diurnal", "trace"):
            raise ValueError(f"unknown arrival kind {self.arrival!r}")
        if self.rate_rps <= 0 or self.admit_rate_rps <= 0:
            raise ValueError("rates must be positive")
        if self.requests < 1 and self.arrival != "trace":
            raise ValueError("a tenant needs at least one request")
        if not self.functions:
            raise ValueError("a tenant needs at least one function")
        if self.priority < 1:
            raise ValueError("priority must be >= 1")
        if self.slo_ns <= 0:
            raise ValueError("slo_ns must be positive")
        lo, hi = self.items_range
        if lo < 1 or hi < lo:
            raise ValueError("items_range must be (lo, hi) with 1 <= lo <= hi")


@dataclass(frozen=True)
class ServingScenario:
    """A named open-loop serving scenario: machine + tenants + knobs."""

    node: str                            # NODE_PRESETS key
    tenants: Tuple[TenantSpec, ...]
    max_batch: int = 8
    max_wait_ns: float = 20_000.0
    max_backlog: int = 48
    autoscaler_period_ns: float = 100_000.0
    scale_up_hotness: float = 6.0
    max_replicas: int = 2
    cooldown_periods: int = 2

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("a scenario needs at least one tenant")
        if len({t.name for t in self.tenants}) != len(self.tenants):
            raise ValueError("tenant names must be unique")


#: Named serving scenarios ``python -m repro serve <preset>`` accepts.
#: ``steady`` is the CI serve-smoke configuration; ``flash-crowd`` is the
#: acceptance scenario (bursty interactive tenant over a steady batch
#: tenant); ``diurnal`` ramps demand across a compressed day and replays
#: a fixed trace alongside.
SERVING_PRESETS = {
    "steady": ServingScenario(
        node="mini",
        tenants=(
            TenantSpec(
                name="interactive",
                arrival="poisson",
                rate_rps=150_000.0,
                requests=150,
                functions=("saxpy", "fir32"),
                items_range=(512, 2048),
                policy="greedy-hw",
                priority=2,
                slo_ns=400_000.0,
                admit_rate_rps=450_000.0,
            ),
            TenantSpec(
                name="batch",
                arrival="poisson",
                rate_rps=80_000.0,
                requests=100,
                functions=("stencil5",),
                items_range=(1024, 4096),
                policy="energy",
                priority=1,
                slo_ns=2_000_000.0,
                admit_rate_rps=240_000.0,
            ),
        ),
    ),
    "flash-crowd": ServingScenario(
        node="board",
        tenants=(
            TenantSpec(
                name="interactive",
                arrival="bursty",
                rate_rps=120_000.0,
                requests=260,
                functions=("saxpy", "fir32"),
                items_range=(512, 2048),
                policy="greedy-hw",
                priority=2,
                slo_ns=300_000.0,
                admit_rate_rps=360_000.0,
                admit_burst=24.0,
                burst_multiplier=10.0,
                burst_fraction=0.25,
            ),
            TenantSpec(
                name="analytics",
                arrival="poisson",
                rate_rps=60_000.0,
                requests=120,
                functions=("matmul", "stencil5"),
                items_range=(1024, 4096),
                policy="energy",
                priority=1,
                slo_ns=2_500_000.0,
                admit_rate_rps=180_000.0,
            ),
        ),
        max_backlog=40,
        scale_up_hotness=5.0,
    ),
    "diurnal": ServingScenario(
        node="mini",
        tenants=(
            TenantSpec(
                name="daytime",
                arrival="diurnal",
                rate_rps=100_000.0,
                requests=200,
                functions=("saxpy", "montecarlo"),
                items_range=(512, 2048),
                policy="greedy-hw",
                priority=2,
                slo_ns=600_000.0,
                admit_rate_rps=400_000.0,
                diurnal_low=0.3,
                diurnal_high=2.5,
            ),
            TenantSpec(
                name="cron",
                arrival="trace",
                requests=80,
                functions=("stencil5",),
                items_range=(1024, 2048),
                policy="energy",
                priority=1,
                slo_ns=3_000_000.0,
                admit_rate_rps=200_000.0,
                trace_offsets_ns=tuple(float(i) * 25_000.0 for i in range(80)),
            ),
        ),
    ),
}


def serving_preset(name: str) -> ServingScenario:
    """Resolve one :data:`SERVING_PRESETS` entry by name."""
    if name not in SERVING_PRESETS:
        known = ", ".join(sorted(SERVING_PRESETS))
        raise KeyError(f"unknown serving preset {name!r}; choose from: {known}")
    return SERVING_PRESETS[name]


def standard_kernel_suite() -> List:
    """Every characterized kernel at its default size."""
    return [
        vecadd_kernel(),
        saxpy_kernel(),
        stencil_kernel(),
        matmul_kernel(),
        fir_kernel(),
        montecarlo_kernel(),
        cart_split_kernel(),
    ]


#: process-level cache for :func:`compiled_suite`: max_variants -> list of
#: (module ctor kwargs, bitstream module_name/frames/data).  The HLS flow
#: is pure given the kernel suite, but every experiment gets *fresh*
#: Registry/Library/Bitstream/Module objects so no mutable state is shared
#: across simulations (and bitstream ids keep advancing as before).
_SUITE_CACHE: dict = {}


def _module_blueprint(module) -> Tuple[dict, Tuple[str, int, bytes]]:
    fields = dict(
        name=module.name,
        function=module.function,
        resources=module.resources,
        initiation_interval=module.initiation_interval,
        pipeline_depth=module.pipeline_depth,
        clock_ns=module.clock_ns,
        setup_ns=module.setup_ns,
        energy_per_item_pj=module.energy_per_item_pj,
        static_power_mw=module.static_power_mw,
        parallel_lanes=module.parallel_lanes,
    )
    bits = module.bitstream
    return fields, (bits.module_name, bits.frames, bits.data)


def compiled_suite(max_variants: int = 2) -> Tuple[FunctionRegistry, ModuleLibrary]:
    """Registry + module library for the whole kernel suite (runs the HLS
    flow once per process; reuse across experiments is transparent)."""
    from repro.fabric.bitstream import Bitstream
    from repro.fabric.module_library import AcceleratorModule

    registry = FunctionRegistry()
    for kernel in standard_kernel_suite():
        registry.register(kernel)

    blueprints = _SUITE_CACHE.get(max_variants)
    if blueprints is None:
        library = ModuleLibrary()
        tool = HlsTool()
        blueprints = []
        for kernel in standard_kernel_suite():
            report = tool.compile(
                kernel, library, SynthesisConstraints(max_variants=max_variants)
            )
            # record in add order so rebuilt libraries match exactly
            blueprints.extend(_module_blueprint(m) for m in report.modules)
        _SUITE_CACHE[max_variants] = blueprints
        return registry, library

    library = ModuleLibrary()
    for fields, (module_name, frames, data) in blueprints:
        library.add(
            AcceleratorModule(
                bitstream=Bitstream(module_name=module_name, frames=frames, data=data),
                **fields,
            )
        )
    return registry, library
