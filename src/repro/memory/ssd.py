"""Worker-local SSD storage.

"Each Worker node is an entire sub-system including processing units,
memory, and storage" (Section 2).  The storage is what out-of-core
workloads (the [5] sorting citation) spill to when the working set
exceeds DRAM.

Model: NVMe-class flash with asymmetric read/write latencies, a finite
channel bandwidth, and a queue (one request in flight per channel pair)
-- the first-order behaviour out-of-core cost models need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, Tuple

from repro.sim import Resource, Simulator, Timeout


@dataclass(frozen=True)
class SsdTiming:
    """NVMe-class defaults (times in ns, bandwidth in GB/s)."""

    read_latency_ns: float = 80_000.0      # 80 us to first byte
    write_latency_ns: float = 30_000.0     # write-back cached program
    read_bandwidth_gbps: float = 3.2
    write_bandwidth_gbps: float = 1.8
    queue_depth: int = 8
    capacity_bytes: int = 256 << 30
    energy_per_byte_pj: float = 60.0

    def __post_init__(self) -> None:
        if self.read_latency_ns < 0 or self.write_latency_ns < 0:
            raise ValueError("latencies must be non-negative")
        if self.read_bandwidth_gbps <= 0 or self.write_bandwidth_gbps <= 0:
            raise ValueError("bandwidths must be positive")
        if self.queue_depth < 1:
            raise ValueError("queue depth must be >= 1")
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")


class Ssd:
    """One Worker's storage device."""

    def __init__(self, sim: Simulator, timing: SsdTiming = SsdTiming(), name: str = "") -> None:
        self.sim = sim
        self.timing = timing
        self.name = name or "ssd"
        self._queue = Resource(sim, capacity=timing.queue_depth, name=f"{self.name}.q")
        self.bytes_read = 0
        self.bytes_written = 0
        self.energy_pj = 0.0

    # ------------------------------------------------------------------
    def read_cost_ns(self, size: int) -> float:
        if size <= 0:
            raise ValueError(f"read size must be positive, got {size}")
        return self.timing.read_latency_ns + size / self.timing.read_bandwidth_gbps

    def write_cost_ns(self, size: int) -> float:
        if size <= 0:
            raise ValueError(f"write size must be positive, got {size}")
        return self.timing.write_latency_ns + size / self.timing.write_bandwidth_gbps

    def read(self, size: int) -> Generator:
        """Simulation process: one read; returns latency_ns."""
        cost = self.read_cost_ns(size)
        start = self.sim.now
        yield from self._queue.use(cost)
        self.bytes_read += size
        self.energy_pj += size * self.timing.energy_per_byte_pj
        return self.sim.now - start

    def write(self, size: int) -> Generator:
        """Simulation process: one write; returns latency_ns."""
        cost = self.write_cost_ns(size)
        start = self.sim.now
        yield from self._queue.use(cost)
        self.bytes_written += size
        self.energy_pj += size * self.timing.energy_per_byte_pj
        return self.sim.now - start


def out_of_core_passes(data_bytes: int, memory_bytes: int) -> int:
    """Merge passes an external sort needs: 1 in-memory pass plus one
    read+write sweep per extra merge level of fan-in data/memory."""
    if data_bytes <= 0 or memory_bytes <= 0:
        raise ValueError("sizes must be positive")
    if data_bytes <= memory_bytes:
        return 0
    runs = math.ceil(data_bytes / memory_bytes)
    # k-way merge with fan-in limited by memory (one buffer per run chunk)
    fan_in = max(2, memory_bytes // (1 << 20))  # 1 MiB merge buffers
    passes = 1
    while runs > fan_in:
        runs = math.ceil(runs / fan_in)
        passes += 1
    return passes


def out_of_core_sort_cost_ns(
    ssd: Ssd, data_bytes: int, memory_bytes: int
) -> Tuple[float, int]:
    """(I/O time, passes) for an external sort of ``data_bytes``.

    Every pass reads and writes the full dataset once; in-memory sorts
    (0 passes) are free on the storage axis.
    """
    passes = out_of_core_passes(data_bytes, memory_bytes)
    if passes == 0:
        return 0.0, 0
    per_pass = ssd.read_cost_ns(data_bytes) + ssd.write_cost_ns(data_bytes)
    return passes * per_pass, passes
