"""Off-chip DRAM timing and energy model.

Each ECOSCALE Worker has its own DRAM (Fig. 4).  We model a first-order
DDR-style device: per-bank open-row buffers (row hit vs. row miss
latencies), a shared channel with finite bandwidth, and per-access /
per-activate energies.  The numbers default to LPDDR4-class values, which
is what an ARM-based Worker SoC of the paper's era would carry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim import Simulator


@dataclass(frozen=True)
class DramTiming:
    """First-order DRAM parameters (times in ns, energy in pJ)."""

    row_hit_ns: float = 15.0
    row_miss_ns: float = 45.0
    bandwidth_gbps: float = 12.8  # GB/s channel bandwidth
    num_banks: int = 8
    row_bytes: int = 2048
    energy_per_byte_pj: float = 20.0
    energy_per_activate_pj: float = 900.0
    capacity_bytes: int = 1 << 30  # 1 GiB per worker by default

    def __post_init__(self) -> None:
        if self.row_hit_ns <= 0 or self.row_miss_ns < self.row_hit_ns:
            raise ValueError("need 0 < row_hit_ns <= row_miss_ns")
        if self.bandwidth_gbps <= 0 or self.num_banks <= 0 or self.row_bytes <= 0:
            raise ValueError("bandwidth, banks and row size must be positive")


class Dram:
    """One Worker's DRAM device.

    ``access`` is a pure timing/energy query (it does not advance the
    simulated clock -- callers fold the returned latency into their own
    processes), which keeps the model usable both from event-driven
    processes and from analytic sweeps.
    """

    def __init__(self, sim: Simulator, timing: DramTiming = DramTiming(), name: str = "") -> None:
        self.sim = sim
        self.timing = timing
        self.name = name
        self._open_rows: Dict[int, int] = {}  # bank -> open row number
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.bytes_transferred = 0
        self.energy_pj = 0.0

    def _bank_row(self, addr: int) -> tuple:
        row_number = addr // self.timing.row_bytes
        return row_number % self.timing.num_banks, row_number

    def access(self, addr: int, size: int, is_write: bool = False) -> float:
        """Latency (ns) for a burst of ``size`` bytes at ``addr``.

        Latency = row activation/CAS latency + transfer time at channel
        bandwidth.  Row-buffer state is updated per touched row.
        """
        if size <= 0:
            raise ValueError(f"access size must be positive, got {size}")
        if not 0 <= addr < self.timing.capacity_bytes:
            raise ValueError(
                f"address {addr:#x} outside DRAM capacity {self.timing.capacity_bytes:#x}"
            )
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.bytes_transferred += size

        # first-touch latency from the row buffer state
        bank, row = self._bank_row(addr)
        if self._open_rows.get(bank) == row:
            latency = self.timing.row_hit_ns
            self.row_hits += 1
        else:
            latency = self.timing.row_miss_ns
            self.row_misses += 1
            self._open_rows[bank] = row
            self.energy_pj += self.timing.energy_per_activate_pj

        # additional activates for bursts spanning rows
        end = addr + size - 1
        last_row = end // self.timing.row_bytes
        extra_rows = last_row - row
        if extra_rows > 0:
            self.row_misses += extra_rows
            self.energy_pj += extra_rows * self.timing.energy_per_activate_pj
            last_bank = last_row % self.timing.num_banks
            self._open_rows[last_bank] = last_row

        transfer_ns = size / self.timing.bandwidth_gbps  # bytes / (GB/s) = ns
        self.energy_pj += size * self.timing.energy_per_byte_pj
        return latency + transfer_ns

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.reads = self.writes = 0
        self.row_hits = self.row_misses = 0
        self.bytes_transferred = 0
        self.energy_pj = 0.0
