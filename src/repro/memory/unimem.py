"""UNIMEM: the partitioned global address space of one PGAS domain.

:class:`UnimemSpace` is the authority a Compute Node's Workers consult for
every memory transaction:

- which Worker's DRAM backs a global address (via :class:`GlobalAddressMap`),
- whether the issuing coherence island may *cache* the touched pages (via
  :class:`PageRegistry` -- the single-cacheable-owner rule),
- page-home migration ("move the task/data home"), which is what lets
  UNIMEM "move tasks and processes close to data instead of moving data
  around".

It also accumulates the domain-wide traffic statistics the FIG3
experiment reports (local vs. remote bytes, coherence-free operation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.memory.address import PAGE_SHIFT, AddressRange, GlobalAddressMap
from repro.memory.page import Page, PageOwnershipError, PageRegistry


@dataclass(frozen=True)
class AccessPlan:
    """How one global-memory access must be carried out.

    ``chunks`` are per-backing-worker pieces; ``cacheable`` says whether the
    issuing island may cache *all* touched pages (mixed-cacheability
    accesses are split by the caller per chunk).
    """

    node: int
    rng: AddressRange
    is_write: bool
    chunks: Tuple[Tuple[int, AddressRange, bool], ...]  # (worker, sub-range, cacheable)

    @property
    def is_local(self) -> bool:
        return all(w == self.node for w, _, __ in self.chunks)

    @property
    def remote_bytes(self) -> int:
        return sum(r.size for w, r, _ in self.chunks if w != self.node)


class UnimemSpace:
    """One PGAS domain's shared partitioned global address space."""

    def __init__(self, num_workers: int, window_size: int) -> None:
        self.map = GlobalAddressMap(num_workers, window_size)
        self.registry = PageRegistry()
        self.local_bytes = 0
        self.remote_bytes = 0
        self.local_accesses = 0
        self.remote_accesses = 0
        self.coherence_messages = 0  # stays 0: UNIMEM needs none globally

    @property
    def num_workers(self) -> int:
        return self.map.num_workers

    # ------------------------------------------------------------------
    # access planning
    # ------------------------------------------------------------------
    def plan_access(self, node: int, rng: AddressRange, is_write: bool) -> AccessPlan:
        """Classify an access and record page/traffic bookkeeping."""
        if rng.end > self.map.total_size:
            raise ValueError(
                f"range [{rng.base:#x}, {rng.end:#x}) exceeds the global space"
            )
        chunks: List[Tuple[int, AddressRange, bool]] = []
        for worker, sub in self.map.split_by_worker(rng):
            cacheable = True
            for page_rng in sub.split_by_page():
                pn = page_rng.base >> PAGE_SHIFT
                ok = self.registry.record_access(pn, worker, node, is_write)
                cacheable = cacheable and ok
            chunks.append((worker, sub, cacheable))
            if worker == node:
                self.local_bytes += sub.size
                self.local_accesses += 1
            else:
                self.remote_bytes += sub.size
                self.remote_accesses += 1
        return AccessPlan(node, rng, is_write, tuple(chunks))

    # ------------------------------------------------------------------
    # page home management
    # ------------------------------------------------------------------
    def page_home(self, addr: int) -> int:
        """The coherence island currently allowed to cache ``addr``'s page."""
        worker = self.map.worker_of(addr)
        return self.registry.cacheable_home(addr >> PAGE_SHIFT, worker)

    def rehome_range(self, rng: AddressRange, new_home: int) -> int:
        """Move the cacheable home of all pages in ``rng``; returns #pages."""
        if not 0 <= new_home < self.num_workers:
            raise PageOwnershipError(f"node {new_home} is not in this domain")
        moved = 0
        for pn in rng.pages():
            base = pn << PAGE_SHIFT
            worker = self.map.worker_of(base)
            self.registry.move_home(pn, worker, new_home)
            moved += 1
        return moved

    def touched_pages(self) -> int:
        return len(self.registry)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def traffic_summary(self) -> Dict[str, float]:
        total = self.local_bytes + self.remote_bytes
        return {
            "local_bytes": float(self.local_bytes),
            "remote_bytes": float(self.remote_bytes),
            "remote_fraction": self.remote_bytes / total if total else 0.0,
            "local_accesses": float(self.local_accesses),
            "remote_accesses": float(self.remote_accesses),
            "coherence_messages": float(self.coherence_messages),
            "home_moves": float(self.registry.home_moves),
        }

    def reset_traffic(self) -> None:
        self.local_bytes = self.remote_bytes = 0
        self.local_accesses = self.remote_accesses = 0
