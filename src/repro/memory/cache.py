"""A set-associative write-back cache model.

Used for Worker CPU caches and for accelerator-local caches ("each
accelerator can also cache its local data", Section 4.1).  The model keeps
tags only -- data payloads live with the buffers -- and reports hits,
misses, and dirty evictions so callers can charge the right latency and
energy.

Replacement is true LRU within a set, which is what the small ACE-port
caches on ARM CCI-class systems approximate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of a cache.  Defaults model a 32 KiB 4-way L1."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 64
    associativity: int = 4

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.size_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache geometry fields must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                "size must be a multiple of line_bytes * associativity"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    invalidations: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class _Line:
    tag: int
    dirty: bool = False


class Cache:
    """Tag-only set-associative LRU cache.

    ``access`` returns ``(hit, writeback_line_addr)``:  ``writeback``
    is the address of a dirty line evicted by this access (or ``None``).
    """

    def __init__(self, geometry: CacheGeometry = CacheGeometry(), name: str = "") -> None:
        self.geometry = geometry
        self.name = name
        self.stats = CacheStats()
        self.enabled = True
        # each set: OrderedDict tag -> _Line, LRU first.  Sets are
        # materialized lazily: large machines instantiate hundreds of
        # caches whose sets are mostly never touched, and an eager list of
        # num_sets OrderedDicts dominated construction time.
        self._sets: Dict[int, "OrderedDict[int, _Line]"] = {}

    # ------------------------------------------------------------------
    def _index_tag(self, addr: int) -> Tuple[int, int]:
        line = addr // self.geometry.line_bytes
        return line % self.geometry.num_sets, line // self.geometry.num_sets

    def _line_addr(self, index: int, tag: int) -> int:
        return (tag * self.geometry.num_sets + index) * self.geometry.line_bytes

    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Look up one address.  Disabled caches always miss, never fill.

        A disabled cache models the ACE-lite case of the paper: a *remote*
        reconfigurable block "should disable its data cache" because the
        L1 interconnect port supports no snooping (Section 4.1).
        """
        if not self.enabled:
            self.stats.misses += 1
            return False, None
        index, tag = self._index_tag(addr)
        cset = self._sets.get(index)
        if cset is None:
            cset = self._sets[index] = OrderedDict()
        line = cset.get(tag)
        if line is not None:
            cset.move_to_end(tag)
            if is_write:
                line.dirty = True
            self.stats.hits += 1
            return True, None
        # miss: fill, possibly evicting LRU
        self.stats.misses += 1
        writeback = None
        if len(cset) >= self.geometry.associativity:
            old_tag, old_line = cset.popitem(last=False)
            if old_line.dirty:
                self.stats.writebacks += 1
                writeback = self._line_addr(index, old_tag)
        cset[tag] = _Line(tag, dirty=is_write)
        return False, writeback

    def touch_range(self, base: int, size: int, is_write: bool = False) -> Tuple[int, int]:
        """Access every line of ``[base, base+size)``; returns (hits, misses)."""
        if size <= 0:
            return 0, 0
        hits = misses = 0
        line_bytes = self.geometry.line_bytes
        first = base // line_bytes
        last = (base + size - 1) // line_bytes
        for line_no in range(first, last + 1):
            hit, _ = self.access(line_no * line_bytes, is_write)
            if hit:
                hits += 1
            else:
                misses += 1
        return hits, misses

    # ------------------------------------------------------------------
    def invalidate(self, addr: int) -> bool:
        """Drop one line (no writeback -- caller must have flushed)."""
        index, tag = self._index_tag(addr)
        cset = self._sets.get(index)
        if cset is not None and tag in cset:
            del cset[tag]
            self.stats.invalidations += 1
            return True
        return False

    def flush(self) -> int:
        """Write back and drop everything; returns the number of dirty lines."""
        dirty = 0
        for cset in self._sets.values():
            for line in cset.values():
                if line.dirty:
                    dirty += 1
        self._sets.clear()
        self.stats.writebacks += dirty
        self.stats.flushes += 1
        return dirty

    def flush_page(self, page_base: int, page_size: int) -> int:
        """Write back and drop all lines of one page; returns dirty count."""
        dirty = 0
        line_bytes = self.geometry.line_bytes
        for offset in range(0, page_size, line_bytes):
            addr = page_base + offset
            index, tag = self._index_tag(addr)
            cset = self._sets.get(index)
            if cset is None:
                continue
            line = cset.get(tag)
            if line is not None:
                if line.dirty:
                    dirty += 1
                del cset[tag]
        self.stats.writebacks += dirty
        return dirty

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(s) for s in self._sets.values())

    def contents(self) -> Dict[int, bool]:
        """Map of line address -> dirty, for tests."""
        out: Dict[int, bool] = {}
        for index, cset in self._sets.items():
            for tag, line in cset.items():
                out[self._line_addr(index, tag)] = line.dirty
        return out
