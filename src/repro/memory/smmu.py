"""Dual-stage System MMU (I/O MMU).

The paper (Section 4.1) relies on a dual-stage SMMU -- like the ARM SMMU in
Fig. 4 -- so that reconfigurable accelerators can be programmed with
*virtual* addresses and invoked directly from user space:

    "A dual stage I/O MMU ... can resolve this problem by translating
    virtual addresses to physical addresses in hardware.  Using an I/O MMU
    the proposed architecture will allow 'user-level access' to the
    reconfigurable accelerators."

Stage 1 translates a process's virtual address (VA) to an intermediate
physical address (IPA); stage 2 translates IPA to the machine physical
address (PA).  Each stage has its own page tables (owned by the OS and the
hypervisor respectively) and the SMMU caches completed translations in a
TLB.  A TLB miss costs a hardware table walk; a missing mapping raises
:class:`SmmuFault` (the accelerator would stall and interrupt the host).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Tuple

from repro.memory.address import PAGE_SHIFT, PAGE_SIZE


class SmmuFault(RuntimeError):
    """Translation fault: no valid mapping for the given address/stage."""

    def __init__(self, stage: int, context: int, addr: int) -> None:
        super().__init__(
            f"SMMU stage-{stage} fault: context {context}, address {addr:#x}"
        )
        self.stage = stage
        self.context = context
        self.addr = addr


class TranslationRegime(Enum):
    """Which stages apply to a stream of transactions."""

    STAGE1_ONLY = "stage1"       # bare-metal OS, no hypervisor
    STAGE2_ONLY = "stage2"       # device owned directly by a VM
    NESTED = "nested"            # full dual-stage (VA -> IPA -> PA)
    BYPASS = "bypass"            # physical addressing (OS-mediated legacy)


class PageTable:
    """A single-stage page-granular mapping with permissions."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._entries: Dict[int, Tuple[int, bool]] = {}  # vpn -> (ppn, writable)

    def map(self, virt_page: int, phys_page: int, writable: bool = True) -> None:
        self._entries[virt_page] = (phys_page, writable)

    def map_range(self, virt_base: int, phys_base: int, size: int, writable: bool = True) -> None:
        """Map ``size`` bytes starting at page-aligned bases."""
        if virt_base % PAGE_SIZE or phys_base % PAGE_SIZE:
            raise ValueError("map_range bases must be page-aligned")
        pages = (size + PAGE_SIZE - 1) >> PAGE_SHIFT
        for i in range(pages):
            self.map((virt_base >> PAGE_SHIFT) + i, (phys_base >> PAGE_SHIFT) + i, writable)

    def unmap(self, virt_page: int) -> bool:
        return self._entries.pop(virt_page, None) is not None

    def lookup(self, virt_page: int) -> Optional[Tuple[int, bool]]:
        return self._entries.get(virt_page)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class SmmuStats:
    translations: int = 0
    tlb_hits: int = 0
    tlb_misses: int = 0
    walks: int = 0
    faults: int = 0

    @property
    def tlb_hit_rate(self) -> float:
        total = self.tlb_hits + self.tlb_misses
        return self.tlb_hits / total if total else 0.0


class Smmu:
    """A dual-stage SMMU instance serving one Worker's accelerator port.

    ``translate`` returns ``(physical_address, latency_ns)``.  The latency
    is zero on a TLB hit and one table-walk per missing stage otherwise;
    in ``BYPASS`` regime addresses pass through untouched with zero cost
    but the access requires OS mediation upstream (modelled by callers
    adding a syscall cost -- see the FIG4 experiment).
    """

    def __init__(
        self,
        tlb_entries: int = 64,
        walk_latency_ns: float = 90.0,
        name: str = "",
    ) -> None:
        if tlb_entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.tlb_entries = tlb_entries
        self.walk_latency_ns = walk_latency_ns
        self.name = name
        self.stats = SmmuStats()
        # context id -> stage tables
        self._stage1: Dict[int, PageTable] = {}
        self._stage2: Dict[int, PageTable] = {}
        self._regime: Dict[int, TranslationRegime] = {}
        # TLB: (context, vpn) -> (ppn, writable); LRU order
        self._tlb: "OrderedDict[Tuple[int, int], Tuple[int, bool]]" = OrderedDict()

    # ------------------------------------------------------------------
    # configuration (done by OS / hypervisor / middleware driver)
    # ------------------------------------------------------------------
    def attach_context(
        self,
        context: int,
        regime: TranslationRegime,
        stage1: Optional[PageTable] = None,
        stage2: Optional[PageTable] = None,
    ) -> None:
        """Bind a stream context (e.g. an accelerator slot) to page tables."""
        if regime in (TranslationRegime.STAGE1_ONLY, TranslationRegime.NESTED) and stage1 is None:
            raise ValueError(f"regime {regime} requires a stage-1 table")
        if regime in (TranslationRegime.STAGE2_ONLY, TranslationRegime.NESTED) and stage2 is None:
            raise ValueError(f"regime {regime} requires a stage-2 table")
        self._regime[context] = regime
        if stage1 is not None:
            self._stage1[context] = stage1
        if stage2 is not None:
            self._stage2[context] = stage2
        self.invalidate_context(context)

    def detach_context(self, context: int) -> None:
        self._regime.pop(context, None)
        self._stage1.pop(context, None)
        self._stage2.pop(context, None)
        self.invalidate_context(context)

    def invalidate_context(self, context: int) -> int:
        """Drop all TLB entries of one context (on remap/teardown)."""
        stale = [k for k in self._tlb if k[0] == context]
        for k in stale:
            del self._tlb[k]
        return len(stale)

    def invalidate_all(self) -> None:
        self._tlb.clear()

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------
    def translate(self, context: int, addr: int, is_write: bool = False) -> Tuple[int, float]:
        """Translate ``addr`` for ``context``; returns (PA, latency_ns)."""
        stats = self.stats
        regime = self._regime.get(context)
        if regime is None:
            stats.faults += 1
            raise SmmuFault(0, context, addr)
        stats.translations += 1
        if regime is TranslationRegime.BYPASS:
            return addr, 0.0

        vpn = addr >> PAGE_SHIFT
        offset = addr & (PAGE_SIZE - 1)
        key = (context, vpn)
        tlb = self._tlb
        cached = tlb.get(key)
        if cached is not None:
            ppn, writable = cached
            if is_write and not writable:
                stats.faults += 1
                raise SmmuFault(1, context, addr)
            tlb.move_to_end(key)
            stats.tlb_hits += 1
            return (ppn << PAGE_SHIFT) | offset, 0.0

        stats.tlb_misses += 1
        latency = 0.0
        page = vpn
        writable = True

        if regime in (TranslationRegime.STAGE1_ONLY, TranslationRegime.NESTED):
            entry = self._stage1[context].lookup(page)
            latency += self.walk_latency_ns
            stats.walks += 1
            if entry is None:
                stats.faults += 1
                raise SmmuFault(1, context, addr)
            page, w1 = entry
            writable = writable and w1

        if regime in (TranslationRegime.STAGE2_ONLY, TranslationRegime.NESTED):
            entry = self._stage2[context].lookup(page)
            latency += self.walk_latency_ns
            stats.walks += 1
            if entry is None:
                stats.faults += 1
                raise SmmuFault(2, context, addr)
            page, w2 = entry
            writable = writable and w2

        if is_write and not writable:
            stats.faults += 1
            raise SmmuFault(1, context, addr)

        # a fresh insert already lands in MRU position; at most one entry
        # can be over capacity, so a single conditional evict suffices
        tlb[key] = (page, writable)
        if len(tlb) > self.tlb_entries:
            tlb.popitem(last=False)
        return (page << PAGE_SHIFT) | offset, latency

    @property
    def tlb_occupancy(self) -> int:
        return len(self._tlb)
