"""Pages and the UNIMEM single-cacheable-owner registry.

From the paper (Section 2):

    "From the point of view of a processor in a multi-node machine, a
    memory page can be cacheable at the local coherent node or at a remote
    coherent node, but not at both.  This is the basis of the UNIMEM
    consistency model, which eliminates global-scope cache coherence
    protocols providing a scalable solution."

:class:`PageRegistry` enforces exactly that invariant: every page has one
*cacheable home* (a coherence island id); any other node must access it
uncached.  Moving the home is an explicit, costed operation (it requires a
flush at the old home).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.memory.address import PAGE_SHIFT


class PageOwnershipError(RuntimeError):
    """Raised when the single-cacheable-owner invariant would be violated."""


@dataclass
class Page:
    """One global page.

    ``backing_worker`` is where the DRAM lives (fixed), ``cacheable_home``
    is the coherence island currently allowed to cache it (movable).
    """

    number: int
    backing_worker: int
    cacheable_home: int
    dirty: bool = False
    migrations: int = 0
    uncached_accessors: Set[int] = field(default_factory=set)

    @property
    def base_address(self) -> int:
        return self.number << PAGE_SHIFT


class PageRegistry:
    """Tracks cacheable homes for every touched page of a PGAS domain.

    Pages are materialized lazily: a page not yet in the registry has its
    backing Worker as its default cacheable home (local data is locally
    cacheable with zero setup cost).
    """

    def __init__(self) -> None:
        self._pages: Dict[int, Page] = {}
        self.home_moves = 0
        self.flushes = 0

    def __len__(self) -> int:
        return len(self._pages)

    def lookup(self, page_number: int) -> Optional[Page]:
        return self._pages.get(page_number)

    def get_or_create(self, page_number: int, backing_worker: int) -> Page:
        page = self._pages.get(page_number)
        if page is None:
            page = Page(
                number=page_number,
                backing_worker=backing_worker,
                cacheable_home=backing_worker,
            )
            self._pages[page_number] = page
        return page

    def cacheable_home(self, page_number: int, backing_worker: int) -> int:
        """The coherence island allowed to cache this page."""
        return self.get_or_create(page_number, backing_worker).cacheable_home

    def may_cache(self, page_number: int, backing_worker: int, node: int) -> bool:
        """May ``node`` keep this page in its caches?"""
        return self.cacheable_home(page_number, backing_worker) == node

    def move_home(
        self, page_number: int, backing_worker: int, new_home: int
    ) -> Page:
        """Re-home a page to a different coherence island.

        The invariant is preserved because the move is atomic: the old home
        must flush (modelled by the ``flushes`` counter and the ``dirty``
        bit) before the new home may cache.  There is never a moment when
        two islands may cache the page.
        """
        page = self.get_or_create(page_number, backing_worker)
        if page.cacheable_home == new_home:
            return page
        if page.dirty:
            self.flushes += 1
            page.dirty = False
        page.cacheable_home = new_home
        page.migrations += 1
        self.home_moves += 1
        return page

    def record_access(
        self, page_number: int, backing_worker: int, node: int, is_write: bool
    ) -> bool:
        """Record an access; returns ``True`` if ``node`` may use its cache.

        Non-home accessors are recorded (they reach the page uncached, via
        ACE-lite style transactions) so migration policies can detect
        sharing patterns.
        """
        page = self.get_or_create(page_number, backing_worker)
        cacheable = page.cacheable_home == node
        if is_write and cacheable:
            page.dirty = True
        if not cacheable:
            page.uncached_accessors.add(node)
        return cacheable

    def check_invariant(self) -> bool:
        """The single-cacheable-owner invariant is structural (one field),
        but we expose an explicit check for property-based tests: no page
        lists its own home among its *uncached* accessors while dirty state
        is attributed elsewhere."""
        for page in self._pages.values():
            if page.cacheable_home in page.uncached_accessors:
                # A node both caching and recorded as uncached accessor would
                # indicate a missed re-home; allowed only if the home moved
                # toward a previous uncached accessor.
                if page.migrations == 0:
                    return False
        return True

    def pages_with_remote_traffic(self) -> Dict[int, int]:
        """Map page -> number of distinct uncached (remote) accessors."""
        return {
            n: len(p.uncached_accessors)
            for n, p in self._pages.items()
            if p.uncached_accessors
        }
