"""Global address space layout.

ECOSCALE defines a contiguous global address space spanning all Workers of
a PGAS domain (Compute Node).  We encode it the way UNIMEM bridges do: the
top bits of a global physical address select the owning Worker, the low
bits are an offset into that Worker's local DRAM window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4 KiB pages


@dataclass(frozen=True)
class AddressRange:
    """A half-open byte range ``[base, base + size)``."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.size < 0:
            raise ValueError(f"invalid range base={self.base} size={self.size}")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.base < other.end and other.base < self.end

    def pages(self) -> Iterator[int]:
        """Yield the page numbers the range touches."""
        if self.size == 0:
            return
        first = self.base >> PAGE_SHIFT
        last = (self.end - 1) >> PAGE_SHIFT
        yield from range(first, last + 1)

    def split_by_page(self) -> Iterator["AddressRange"]:
        """Split into per-page sub-ranges (useful for page-granular checks)."""
        addr = self.base
        remaining = self.size
        while remaining > 0:
            page_end = ((addr >> PAGE_SHIFT) + 1) << PAGE_SHIFT
            chunk = min(remaining, page_end - addr)
            yield AddressRange(addr, chunk)
            addr += chunk
            remaining -= chunk


class GlobalAddressMap:
    """Maps the flat global physical address space onto Workers.

    Each Worker owns a fixed-size window (its local DRAM aperture).  Global
    address = ``worker_id * window_size + local_offset``.  This mirrors how
    UNIMEM exposes remote DRAM through an address aperture: a plain load or
    store whose address falls in another Worker's window is routed over the
    interconnect to that Worker.

    >>> amap = GlobalAddressMap(num_workers=4, window_size=1 << 30)
    >>> amap.worker_of(3 * (1 << 30) + 100)
    3
    >>> amap.local_offset(3 * (1 << 30) + 100)
    100
    """

    def __init__(self, num_workers: int, window_size: int) -> None:
        if num_workers < 1:
            raise ValueError(f"need at least one worker, got {num_workers}")
        if window_size <= 0 or window_size % PAGE_SIZE:
            raise ValueError(
                f"window_size must be a positive multiple of the page size, got {window_size}"
            )
        self.num_workers = num_workers
        self.window_size = window_size

    @property
    def total_size(self) -> int:
        return self.num_workers * self.window_size

    def worker_of(self, addr: int) -> int:
        """The Worker whose DRAM backs global address ``addr``."""
        self._check(addr)
        return addr // self.window_size

    def local_offset(self, addr: int) -> int:
        """Offset of ``addr`` within its owning Worker's DRAM."""
        self._check(addr)
        return addr % self.window_size

    def global_address(self, worker_id: int, offset: int) -> int:
        """Compose a global address from (worker, local offset)."""
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"worker {worker_id} out of range")
        if not 0 <= offset < self.window_size:
            raise ValueError(f"offset {offset:#x} outside the worker window")
        return worker_id * self.window_size + offset

    def window(self, worker_id: int) -> AddressRange:
        """The global address window owned by ``worker_id``."""
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"worker {worker_id} out of range")
        return AddressRange(worker_id * self.window_size, self.window_size)

    def split_by_worker(self, rng: AddressRange) -> Iterator[Tuple[int, AddressRange]]:
        """Split a global range into (worker, sub-range) pieces."""
        addr = rng.base
        remaining = rng.size
        while remaining > 0:
            worker = self.worker_of(addr)
            window_end = (worker + 1) * self.window_size
            chunk = min(remaining, window_end - addr)
            yield worker, AddressRange(addr, chunk)
            addr += chunk
            remaining -= chunk

    def _check(self, addr: int) -> None:
        if not 0 <= addr < self.total_size:
            raise ValueError(
                f"address {addr:#x} outside the global space "
                f"[0, {self.total_size:#x})"
            )
