"""Progressive address translation.

The paper (Section 2) cites Katevenis's "interprocessor communication seen
as load-store instruction generalization": instead of translating a remote
virtual address to a final physical address at the source, the address is
translated *progressively* -- each level of the hierarchy maps the portion
of the address that selects the next level, so no node needs a global map
of the whole machine.

We model this as an ordered chain of :class:`TranslationStep`s.  Each step
owns a window of the incoming address space, rewrites matching addresses
into the next level's space, and charges a small per-step latency.  The
total translation cost therefore grows with hierarchy depth -- exactly the
property the FIG1/FIG3 experiments quantify -- while the per-node table
size stays constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class TranslationStep:
    """One level's window remap: [window_base, +window_size) -> +target_base."""

    name: str
    window_base: int
    window_size: int
    target_base: int
    latency_ns: float = 5.0

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if self.window_base < 0 or self.target_base < 0:
            raise ValueError("bases must be non-negative")

    def matches(self, addr: int) -> bool:
        return self.window_base <= addr < self.window_base + self.window_size

    def apply(self, addr: int) -> int:
        if not self.matches(addr):
            raise ValueError(
                f"address {addr:#x} outside window of step {self.name!r}"
            )
        return addr - self.window_base + self.target_base


class ProgressiveTranslator:
    """A chain of per-level translation steps.

    ``translate`` walks the chain in order; each step whose window matches
    the *current* address rewrites it.  A remote access that crosses
    ``k`` hierarchy levels is rewritten ``k`` times; a purely local access
    matches no step and is free.
    """

    #: bound on the per-translator result memo; cleared wholesale when full
    _MEMO_MAX = 4096

    def __init__(self, steps: Sequence[TranslationStep] = ()) -> None:
        self.steps: List[TranslationStep] = list(steps)
        self.translations = 0
        self.total_steps_applied = 0
        # addr -> (final, latency, applied-names tuple).  The chain is
        # pure per address, so repeated pages skip the whole walk; stats
        # are still charged per call so reports are unchanged.
        self._memo: Dict[int, Tuple[int, float, Tuple[str, ...]]] = {}

    def add_step(self, step: TranslationStep) -> None:
        self.steps.append(step)
        self._memo.clear()

    def translate(self, addr: int) -> Tuple[int, float, List[str]]:
        """Returns (final_address, total_latency_ns, applied step names)."""
        if addr < 0:
            raise ValueError(f"address must be non-negative, got {addr}")
        self.translations += 1
        hit = self._memo.get(addr)
        if hit is not None:
            final, latency, names = hit
            self.total_steps_applied += len(names)
            return final, latency, list(names)
        latency = 0.0
        applied: List[str] = []
        current = addr
        for step in self.steps:
            if step.matches(current):
                current = step.apply(current)
                latency += step.latency_ns
                applied.append(step.name)
                self.total_steps_applied += 1
        if len(self._memo) >= self._MEMO_MAX:
            self._memo.clear()
        self._memo[addr] = (current, latency, tuple(applied))
        return current, latency, applied

    @property
    def mean_steps_per_translation(self) -> float:
        if not self.translations:
            return 0.0
        return self.total_steps_applied / self.translations


def build_hierarchy_translator(
    levels: int,
    window_bits: int = 30,
    latency_per_level_ns: float = 5.0,
) -> ProgressiveTranslator:
    """Build a translator chain for a ``levels``-deep hierarchy.

    Level ``i`` owns the alias window ``[i * 2^window_bits, ...)`` and maps
    it one level down.  This produces the linear-in-depth translation cost
    of a tree-structured UNIMEM system: an address aliased at the top of an
    ``L``-level hierarchy is rewritten ``L`` times before it reaches DRAM.
    """
    if levels < 1:
        raise ValueError("need at least one level")
    window = 1 << window_bits
    steps = [
        TranslationStep(
            name=f"level{i}",
            window_base=(levels - i) * window,
            window_size=window,
            target_base=(levels - i - 1) * window,
            latency_ns=latency_per_level_ns,
        )
        for i in range(levels)
    ]
    return ProgressiveTranslator(steps)
