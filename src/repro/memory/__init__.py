"""The UNIMEM memory system.

UNIMEM (from the EUROSERVER project, extended here per ECOSCALE) provides a
*partitioned global address space*: every Worker's DRAM appears in one
contiguous system-wide physical address space, and remote memory is reached
with plain load/store transactions rather than a message-passing API.

The key consistency rule -- the basis of the UNIMEM model and the reason it
needs no global cache-coherence protocol -- is that **a memory page may be
cacheable at exactly one coherence island** (its *home*): either the node
that owns the backing DRAM or one remote node, never both at once
(paper, Section 2).

Units used throughout: simulated time in **nanoseconds**, sizes in
**bytes**, energy in **picojoules**.
"""

from repro.memory.address import (
    PAGE_SHIFT,
    PAGE_SIZE,
    AddressRange,
    GlobalAddressMap,
)
from repro.memory.cache import Cache, CacheGeometry, CacheStats
from repro.memory.dram import Dram, DramTiming
from repro.memory.page import Page, PageOwnershipError, PageRegistry
from repro.memory.smmu import PageTable, Smmu, SmmuFault, TranslationRegime
from repro.memory.ssd import Ssd, SsdTiming, out_of_core_passes, out_of_core_sort_cost_ns
from repro.memory.translation import (
    ProgressiveTranslator,
    TranslationStep,
    build_hierarchy_translator,
)
from repro.memory.unimem import AccessPlan, UnimemSpace

__all__ = [
    "AccessPlan",
    "AddressRange",
    "Cache",
    "CacheGeometry",
    "CacheStats",
    "Dram",
    "DramTiming",
    "GlobalAddressMap",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "Page",
    "PageOwnershipError",
    "PageRegistry",
    "PageTable",
    "ProgressiveTranslator",
    "Smmu",
    "Ssd",
    "SsdTiming",
    "SmmuFault",
    "TranslationRegime",
    "TranslationStep",
    "UnimemSpace",
    "build_hierarchy_translator",
    "out_of_core_passes",
    "out_of_core_sort_cost_ns",
]
