"""SLO burn-rate alerting over the serving completion stream.

The classic SRE formulation: a tenant has an SLO *attainment target*
(e.g. 95% of completions within ``slo_ns``), which leaves an **error
budget** of ``1 - target``.  The *burn rate* over a window is

::

    burn = (violations-in-window / completions-in-window) / budget

``burn == 1`` consumes the budget exactly at the sustainable rate;
``burn == 10`` exhausts it 10x too fast.  Two windows watch the same
stream:

- the **fast** window (short, high threshold) catches cliffs -- a
  flash crowd blowing latency up right now,
- the **slow** window (long, lower threshold) catches smolder -- a
  steady trickle of deadline misses that a short window keeps
  forgetting.

Each (tenant, window) pair is a tiny fire/clear state machine: an
alert *fires* when its burn crosses the threshold with at least
``min_completions`` observations in the window, and *clears* when it
drops back under.  Every transition lands on the alert timeline (and,
when a telemetry hub is attached, as a structured ``slo.burn`` event),
so the report's alert history is a deterministic function of the
completion stream -- replaying the same seed reproduces it exactly.

The alerter is observe-only by default.  Consumers opt in:
:meth:`BurnRateAlerter.is_burning` is the hook the autoscaler (via its
``alert_source``) and chaos verdicts can poll.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple


@dataclass
class BurnRatePolicy:
    """Windows and thresholds for one serving run's alerting."""

    target: float = 0.95             # SLO attainment goal (budget = 1-target)
    fast_window_ns: float = 200_000.0
    fast_burn: float = 10.0          # page-grade: budget gone ~10x too fast
    slow_window_ns: float = 1_000_000.0
    slow_burn: float = 4.0           # ticket-grade: sustained overspend
    min_completions: int = 10        # observations before a window may fire
    # the internal latency objective as a fraction of the contractual
    # SLO: alerting against a tighter objective (e.g. 0.1 = 10% of the
    # tenant's slo_ns) gives early warning while real attainment is
    # still 100% -- the usual SRE setup of objective < agreement
    slo_scale: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if self.fast_window_ns <= 0 or self.slow_window_ns <= 0:
            raise ValueError("windows must be positive")
        if self.min_completions < 1:
            raise ValueError("min_completions must be >= 1")
        if self.slo_scale <= 0:
            raise ValueError("slo_scale must be positive")

    @property
    def budget(self) -> float:
        return 1.0 - self.target

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "fast_window_ns": self.fast_window_ns,
            "fast_burn": self.fast_burn,
            "slow_window_ns": self.slow_window_ns,
            "slow_burn": self.slow_burn,
            "min_completions": self.min_completions,
            "slo_scale": self.slo_scale,
        }


class _WindowState:
    """One (tenant, window) sliding window + its fire/clear latch."""

    __slots__ = ("window_ns", "threshold", "samples", "violations", "firing")

    def __init__(self, window_ns: float, threshold: float) -> None:
        self.window_ns = window_ns
        self.threshold = threshold
        self.samples: Deque[Tuple[float, bool]] = deque()
        self.violations = 0
        self.firing = False

    def observe(self, ts: float, violated: bool) -> None:
        self.samples.append((ts, violated))
        if violated:
            self.violations += 1
        cutoff = ts - self.window_ns
        while self.samples and self.samples[0][0] <= cutoff:
            _, old = self.samples.popleft()
            if old:
                self.violations -= 1

    def burn(self, budget: float) -> float:
        if not self.samples:
            return 0.0
        rate = self.violations / len(self.samples)
        return rate / budget


class BurnRateAlerter:
    """Multi-window burn-rate alerting, fed completion by completion."""

    def __init__(
        self,
        policy: Optional[BurnRatePolicy] = None,
        telemetry=None,
        component: str = "serve.alerts",
    ) -> None:
        self.policy = policy or BurnRatePolicy()
        self.telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        self._emit = (
            self.telemetry.emitter("slo.burn", component)
            if self.telemetry is not None
            else None
        )
        self._windows: Dict[Tuple[str, str], _WindowState] = {}
        self.timeline: List[Dict[str, Any]] = []
        self.fired = 0
        self.observed = 0

    # ------------------------------------------------------------------
    def _window(self, tenant: str, name: str) -> _WindowState:
        key = (tenant, name)
        state = self._windows.get(key)
        if state is None:
            p = self.policy
            if name == "fast":
                state = _WindowState(p.fast_window_ns, p.fast_burn)
            else:
                state = _WindowState(p.slow_window_ns, p.slow_burn)
            self._windows[key] = state
        return state

    def observe(self, ts: float, tenant: str, latency_ns: float, slo_ns: float) -> None:
        """Fold one completion in and evaluate both windows."""
        self.observed += 1
        violated = latency_ns > slo_ns * self.policy.slo_scale
        budget = self.policy.budget
        for name in ("fast", "slow"):
            state = self._window(tenant, name)
            state.observe(ts, violated)
            burn = state.burn(budget)
            should_fire = (
                len(state.samples) >= self.policy.min_completions
                and burn >= state.threshold
            )
            if should_fire and not state.firing:
                state.firing = True
                self.fired += 1
                self._transition(ts, tenant, name, burn, "fire")
            elif state.firing and not should_fire:
                state.firing = False
                self._transition(ts, tenant, name, burn, "clear")

    def _transition(
        self, ts: float, tenant: str, window: str, burn: float, event: str
    ) -> None:
        entry = {
            "ts": ts,
            "tenant": tenant,
            "window": window,
            "burn": round(burn, 6),
            "event": event,
        }
        self.timeline.append(entry)
        if self._emit is not None:
            self._emit(
                tenant=tenant, window=window, burn=entry["burn"], event=event
            )

    def note_degraded(self, active: bool, reason: Optional[str], ts: float) -> None:
        """Brownout transition observer (wired as a gateway listener).

        Lands on the same timeline as fire/clear entries so the alert
        history shows which burns happened *inside* a degraded window --
        an on-call reading the report can tell brownout fallout from
        organic SLO misses.
        """
        entry = {
            "ts": ts,
            "tenant": "*",
            "window": "degraded",
            "burn": 0.0,
            "event": "degraded-enter" if active else "degraded-exit",
        }
        if reason is not None:
            entry["reason"] = reason
        self.timeline.append(entry)
        if self._emit is not None:
            self._emit(
                tenant="*", window="degraded", burn=0.0, event=entry["event"]
            )

    # ------------------------------------------------------------------
    # consumer hooks
    # ------------------------------------------------------------------
    def is_burning(self, tenant: Optional[str] = None, window: Optional[str] = None) -> bool:
        """Any alert currently firing (optionally filtered)?

        This is the opt-in signal for the autoscaler's ``alert_source``
        and for chaos verdicts -- the alerter itself never acts.
        """
        for (t, w), state in self._windows.items():
            if tenant is not None and t != tenant:
                continue
            if window is not None and w != window:
                continue
            if state.firing:
                return True
        return False

    def active(self) -> List[Tuple[str, str]]:
        """(tenant, window) pairs currently firing, sorted."""
        return sorted(k for k, s in self._windows.items() if s.firing)

    # ------------------------------------------------------------------
    def report_block(self) -> Dict[str, Any]:
        """The canonical ``alerts`` block of the ServingReport."""
        return {
            "policy": self.policy.to_dict(),
            "observed": self.observed,
            "fired": self.fired,
            "active": [list(pair) for pair in self.active()],
            "timeline": list(self.timeline),
        }
