"""The dynamic batcher: compatible requests become one NDRange task.

Admitted requests park in per-key buckets (``(tenant, function,
shape_class)``); a bucket flushes to the gateway when it reaches
``max_batch`` requests or when its oldest request has waited
``max_wait_ns`` -- whichever comes first.  The coalesced batch runs as a
single :class:`~repro.apps.taskgraph.Task` whose ``items`` is the sum of
the member requests', so one accelerator invocation amortizes dispatch,
scheduling and (potentially) reconfiguration cost over the whole batch.

Timers are plain simulator callbacks guarded by a per-key generation
counter: a flush bumps the generation, so a stale timer for an
already-flushed bucket is a no-op rather than a double flush.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.serving.requests import Request

BatchKey = Tuple[str, str, int]


class DynamicBatcher:
    """max-batch / max-wait coalescing of compatible requests."""

    def __init__(self, gateway, max_batch: int = 8, max_wait_ns: float = 50_000.0) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ns < 0:
            raise ValueError("max_wait_ns must be >= 0")
        self.gateway = gateway
        self.sim = gateway.sim
        self.max_batch = max_batch
        self.max_wait_ns = max_wait_ns
        # opt-in deadline stretch: a callable returning the current
        # max-wait multiplier (brownout sets this to lengthen deadlines
        # while the machine is degraded).  None = the plain deadline.
        self.wait_stretch = None
        self._buckets: Dict[BatchKey, List[Request]] = {}
        self._generation: Dict[BatchKey, int] = {}
        self.batches_flushed = 0
        self.flushes_full = 0
        self.flushes_timeout = 0
        self.requests_batched = 0

    def depth(self, key: BatchKey) -> int:
        return len(self._buckets.get(key, ()))

    def pending(self) -> int:
        """Requests parked across all buckets (not yet dispatched)."""
        return sum(len(b) for b in self._buckets.values())

    def add(self, request: Request) -> None:
        key = request.batch_key
        bucket = self._buckets.setdefault(key, [])
        bucket.append(request)
        self.requests_batched += 1
        if len(bucket) >= self.max_batch:
            self.flushes_full += 1
            self._flush(key)
        elif len(bucket) == 1:
            gen = self._generation.get(key, 0)
            wait = self.max_wait_ns
            if self.wait_stretch is not None:
                wait *= self.wait_stretch()
            self.sim.schedule(wait, self._timer, key, gen)

    def _timer(self, key: BatchKey, gen: int) -> None:
        if self._generation.get(key, 0) != gen:
            return                       # bucket already flushed and refilled
        if not self._buckets.get(key):
            return
        self.flushes_timeout += 1
        self._flush(key)

    def _flush(self, key: BatchKey) -> None:
        batch = self._buckets.pop(key, [])
        if not batch:
            return
        self._generation[key] = self._generation.get(key, 0) + 1
        self.batches_flushed += 1
        now = self.sim.now
        for r in batch:
            r.batched_at = now
        self.gateway.dispatch_batch(key, batch)

    def flush_all(self) -> None:
        """Dispatch every parked bucket (arrival-stream drain)."""
        for key in sorted(self._buckets):
            self._flush(key)

    @property
    def mean_batch_size(self) -> float:
        if not self.batches_flushed:
            return 0.0
        return self.requests_batched / self.batches_flushed
