"""Per-tenant SLO accounting: latency percentiles, goodput, shed rate.

The tracker is fed by the gateway at offer/shed/complete time and keeps
two views of the same stream:

- **streaming** p50/p95/p99 estimates
  (:class:`~repro.telemetry.quantiles.StreamingQuantile`, O(1) memory,
  deterministic) -- what the autoscaler reads every control period, and
- the **exact** sample for the final report
  (:func:`~repro.telemetry.quantiles.latency_summary`), so the canonical
  JSON the CI diffs never depends on estimator drift.

Goodput is the rate of requests completed *within their tenant's SLO
target* -- a completion that blew the deadline counts toward throughput
but not goodput.  :meth:`SLOTracker.observe` adapts structured
``serve.*`` telemetry events into the same counters, so a tracker can be
rebuilt from an exported event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.serving.requests import Request
from repro.telemetry.quantiles import StreamingQuantile, latency_summary


@dataclass
class TenantSLO:
    """One tenant's live serving state."""

    name: str
    slo_ns: float
    offered: int = 0
    admitted: int = 0
    shed: Dict[str, int] = field(default_factory=dict)
    completed: int = 0
    completed_within_slo: int = 0
    latencies_ns: List[float] = field(default_factory=list)
    p50: StreamingQuantile = field(default_factory=lambda: StreamingQuantile(0.50))
    p95: StreamingQuantile = field(default_factory=lambda: StreamingQuantile(0.95))
    p99: StreamingQuantile = field(default_factory=lambda: StreamingQuantile(0.99))

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def shed_rate(self) -> float:
        return self.shed_total / self.offered if self.offered else 0.0

    @property
    def outstanding(self) -> int:
        return self.admitted - self.completed

    def summary(self, horizon_ns: float) -> Dict[str, Any]:
        horizon_s = horizon_ns / 1e9 if horizon_ns > 0 else 0.0
        return {
            "slo_ns": self.slo_ns,
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": dict(sorted(self.shed.items())),
            "shed_rate": self.shed_rate,
            "completed": self.completed,
            "latency_ns": latency_summary(self.latencies_ns),
            "throughput_rps": self.completed / horizon_s if horizon_s else 0.0,
            "goodput_rps": (
                self.completed_within_slo / horizon_s if horizon_s else 0.0
            ),
            "slo_attainment": (
                self.completed_within_slo / self.completed if self.completed else 1.0
            ),
        }


class SLOTracker:
    """Machine-wide per-tenant SLO state the autoscaler and report read."""

    def __init__(self) -> None:
        self._tenants: Dict[str, TenantSLO] = {}

    def configure_tenant(self, name: str, slo_ns: float) -> TenantSLO:
        state = TenantSLO(name=name, slo_ns=slo_ns)
        self._tenants[name] = state
        return state

    def tenant(self, name: str) -> TenantSLO:
        if name not in self._tenants:
            # unconfigured tenants get an effectively-unbounded SLO
            self._tenants[name] = TenantSLO(name=name, slo_ns=float("inf"))
        return self._tenants[name]

    def tenants(self) -> List[TenantSLO]:
        return [self._tenants[k] for k in sorted(self._tenants)]

    # ------------------------------------------------------------------
    # gateway-side hooks
    # ------------------------------------------------------------------
    def note_offered(self, request: Request) -> None:
        self.tenant(request.tenant).offered += 1

    def note_shed(self, request: Request, reason: str) -> None:
        t = self.tenant(request.tenant)
        t.shed[reason] = t.shed.get(reason, 0) + 1

    def note_admitted(self, request: Request) -> None:
        self.tenant(request.tenant).admitted += 1

    def note_completed(self, request: Request) -> None:
        t = self.tenant(request.tenant)
        t.completed += 1
        latency = request.latency_ns
        t.latencies_ns.append(latency)
        t.p50.record(latency)
        t.p95.record(latency)
        t.p99.record(latency)
        if latency <= t.slo_ns:
            t.completed_within_slo += 1

    # ------------------------------------------------------------------
    # telemetry-event adapter
    # ------------------------------------------------------------------
    def observe(self, event) -> None:
        """Fold one structured ``serve.*`` telemetry event in.

        Accepts :class:`~repro.telemetry.events.TelemetryEvent` (or any
        object with ``kind`` and ``attrs``); lets a tracker be rebuilt
        offline from an exported event log.
        """
        kind, attrs = event.kind, event.attrs
        if kind == "serve.request":
            self.tenant(attrs["tenant"]).offered += 1
        elif kind == "serve.shed":
            t = self.tenant(attrs["tenant"])
            t.shed[attrs["reason"]] = t.shed.get(attrs["reason"], 0) + 1
        elif kind == "serve.admit":
            self.tenant(attrs["tenant"]).admitted += 1
        elif kind == "serve.complete":
            t = self.tenant(attrs["tenant"])
            t.completed += 1
            latency = attrs["latency_ns"]
            t.latencies_ns.append(latency)
            t.p50.record(latency)
            t.p95.record(latency)
            t.p99.record(latency)
            if latency <= t.slo_ns:
                t.completed_within_slo += 1

    # ------------------------------------------------------------------
    def summary(self, horizon_ns: float) -> Dict[str, Any]:
        return {t.name: t.summary(horizon_ns) for t in self.tenants()}
