"""The serving gateway: arrivals -> admission -> batching -> runtime.

:class:`ServingGateway` wires the serving layer onto one
:class:`~repro.core.runtime.engine.ExecutionEngine`:

::

    arrival processes (one sim process per tenant)
            | offer(request)
            v
    AdmissionController -- token bucket + bounded backlog -> shed verdicts
            | admitted
            v
    DynamicBatcher -- (tenant, function, shape-class) buckets,
            |           max-batch / max-wait flush
            v  dispatch_batch
    JobManager.submit_job -- one single-task NDRange job per batch
            |                (auto_stop off: the engine idles between
            v                 batches instead of tearing down)
    SLOTracker <- per-request completion latencies
            ^
    Autoscaler -- each period reads ExecutionHistory hotness + SLO state,
                  loads/evicts/replicates accelerator modules

Shutdown is demand-driven: when every tenant's arrival stream has
drained, the batcher force-flushes, and the moment the last admitted
request completes the gateway stops the autoscaler and the engine so the
event queue can drain and ``sim.run()`` returns.

:func:`run_serving_experiment` is the one-call harness the CLI, the CI
smoke job and the tests share; its :class:`ServingReport` serializes to
canonical sorted-key JSON for determinism diffing.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.apps.taskgraph import Task, TaskGraph
from repro.core.runtime.jobs import JobManager
from repro.serving.admission import AdmissionController
from repro.serving.alerts import BurnRateAlerter, BurnRatePolicy
from repro.serving.arrivals import arrival_process
from repro.serving.batcher import BatchKey, DynamicBatcher
from repro.serving.brownout import BROWNOUT, BrownoutController, BrownoutPolicy
from repro.serving.requests import Request
from repro.serving.slo import SLOTracker
from repro.serving.tracing import RequestTracer, TraceConfig
from repro.serving.autoscaler import Autoscaler
from repro.sim import spawn
from repro.telemetry.tracing import Tracer


@dataclass
class ServingReport:
    """Everything one serving run did, in canonical-JSON-able form."""

    scenario: str
    seed: int
    horizon_ns: float
    offered: int
    admitted: int
    shed: int
    completed: int
    unrecovered: int
    batches: int
    mean_batch_size: float
    flushes_full: int
    flushes_timeout: int
    admission_verdicts: Dict[str, int]
    tenants: Dict[str, Dict[str, Any]]
    autoscaler: Dict[str, Any]
    machine: Dict[str, Any]
    chaos: Dict[str, Any] = field(default_factory=dict)
    # opt-in observability blocks: empty (and absent from the canonical
    # JSON) unless request tracing / burn-rate alerting / brownout was
    # enabled, so disabled-mode reports stay byte-identical to seed
    tracing: Dict[str, Any] = field(default_factory=dict)
    alerts: Dict[str, Any] = field(default_factory=dict)
    degraded: Dict[str, Any] = field(default_factory=dict)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "scenario": self.scenario,
            "seed": self.seed,
            "horizon_ns": self.horizon_ns,
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "completed": self.completed,
            "unrecovered": self.unrecovered,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "flushes_full": self.flushes_full,
            "flushes_timeout": self.flushes_timeout,
            "admission_verdicts": dict(sorted(self.admission_verdicts.items())),
            "tenants": self.tenants,
            "autoscaler": self.autoscaler,
            "machine": self.machine,
            "chaos": self.chaos,
        }
        if self.tracing:
            out["tracing"] = self.tracing
        if self.alerts:
            out["alerts"] = self.alerts
        if self.degraded:
            out["degraded"] = self.degraded
        return out

    def json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON (CI determinism diffing)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


class ServingGateway:
    """One machine's request front door (see module docstring)."""

    def __init__(
        self,
        engine,
        scenario,
        seed: int = 0,
        scenario_name: str = "custom",
        telemetry=None,
        tracing: Optional[TraceConfig] = None,
        alerts: Optional[BurnRatePolicy] = None,
        brownout: Optional[BrownoutPolicy] = None,
        spawn_arrivals: bool = True,
    ) -> None:
        self.engine = engine
        self.sim = engine.node.sim
        self.scenario = scenario
        self.seed = seed
        self.scenario_name = scenario_name
        self.telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        # pre-bound emitters for the per-request hot sites: one bound
        # callable per site instead of rebuilding kind/component strings
        # and walking hub attributes on every request.  None when dark,
        # so the disabled cost stays a single identity check.
        if self.telemetry is not None:
            component = f"{engine.node.name}.gateway"
            emitter = self.telemetry.emitter
            self._emit_request = emitter("serve.request", component)
            self._emit_shed = emitter("serve.shed", component)
            self._emit_admit = emitter("serve.admit", component)
            self._emit_batch = emitter("serve.batch", component)
            self._emit_complete = emitter("serve.complete", component)
        else:
            self._emit_request = self._emit_shed = self._emit_admit = None
            self._emit_batch = self._emit_complete = None
        # request tracing is a separate opt-in from the hub: a hub alone
        # must not change the report (byte-identity contract), and traced
        # runs work dark too (spans land on a standalone tracer)
        if tracing is not None:
            span_sink = (
                self.telemetry.tracer
                if self.telemetry is not None
                else Tracer(self.sim)
            )
            self.request_tracer: Optional[RequestTracer] = RequestTracer(
                span_sink, tracing
            )
        else:
            self.request_tracer = None
        self.alerter: Optional[BurnRateAlerter] = (
            BurnRateAlerter(
                alerts,
                telemetry=telemetry,
                component=f"{engine.node.name}.alerts",
            )
            if alerts is not None
            else None
        )
        # auto_stop off: the engine must idle between batches, not tear
        # down the moment the in-flight job count touches zero
        self.manager = JobManager(engine, fair_share=False, auto_stop=False)
        self.admission = AdmissionController(max_backlog=scenario.max_backlog)
        self.slo = SLOTracker()
        self.batcher = DynamicBatcher(
            self, max_batch=scenario.max_batch, max_wait_ns=scenario.max_wait_ns
        )
        self.autoscaler = Autoscaler(
            engine,
            self.slo,
            period_ns=scenario.autoscaler_period_ns,
            scale_up_hotness=scenario.scale_up_hotness,
            max_replicas=scenario.max_replicas,
            cooldown_periods=scenario.cooldown_periods,
            telemetry=telemetry,
        )
        # degraded-mode serving: only a configured policy creates the
        # controller, so un-browned-out runs carry no extra state at all
        if brownout is not None:
            self.brownout: Optional[BrownoutController] = BrownoutController(
                brownout,
                self.sim,
                telemetry=telemetry,
                component=f"{engine.node.name}.brownout",
            )
            self.batcher.wait_stretch = self.brownout.wait_stretch
            self.autoscaler.brownout_source = self.brownout
            if self.alerter is not None:
                self.brownout.listeners.append(self.alerter.note_degraded)
        else:
            self.brownout = None
        self._specs = {t.name: t for t in scenario.tenants}
        for t in scenario.tenants:
            self.slo.configure_tenant(t.name, t.slo_ns)
            self.admission.configure_tenant(
                t.name, t.admit_rate_rps, t.admit_burst
            )
        self._request_ids = itertools.count()
        self._rr_worker = itertools.count()
        self._outstanding = 0
        self._spawn_arrivals = spawn_arrivals
        self._arrivals_open = len(scenario.tenants) if spawn_arrivals else 0
        self._holds = 0
        self._autoscaler_proc = None
        self._started = False
        self._drained = False
        self._end_ns: Optional[float] = None

    # ------------------------------------------------------------------
    # arrival-side interface
    # ------------------------------------------------------------------
    def next_request_id(self) -> int:
        return next(self._request_ids)

    def offer(self, request: Request) -> None:
        """One request from an arrival process: judge, shed or batch."""
        tracer = self.request_tracer
        if tracer is not None:
            request.trace = tracer.context(request)
        self.slo.note_offered(request)
        if self._emit_request is not None:
            self._emit_request(
                tenant=request.tenant,
                function=request.function,
                items=request.items,
                request=request.request_id,
            )
        backlog = self.slo.tenant(request.tenant).outstanding
        # brownout shedding sits *in front of* admission: while degraded,
        # tenants below the priority floor never touch the token buckets,
        # so the surviving capacity is reserved for the interactive tier
        if self.brownout is not None and self.brownout.active:
            spec = self._specs.get(request.tenant)
            if self.brownout.should_shed(spec.priority if spec else 1):
                request.shed_reason = BROWNOUT
                self.slo.note_shed(request, BROWNOUT)
                self.brownout.note_shed()
                if self._emit_shed is not None:
                    self._emit_shed(
                        tenant=request.tenant,
                        reason=BROWNOUT,
                        backlog=backlog,
                        request=request.request_id,
                    )
                if tracer is not None:
                    tracer.on_verdict(request.trace, False, BROWNOUT, backlog)
                    tracer.on_shed(request.trace)
                return
        verdict = self.admission.admit(request, self.sim.now, backlog)
        if tracer is not None:
            tracer.on_verdict(
                request.trace, verdict.accepted, verdict.reason, verdict.backlog
            )
        if not verdict.accepted:
            request.shed_reason = verdict.reason
            self.slo.note_shed(request, verdict.reason)
            if self._emit_shed is not None:
                self._emit_shed(
                    tenant=request.tenant,
                    reason=verdict.reason,
                    backlog=verdict.backlog,
                    request=request.request_id,
                )
            if tracer is not None:
                tracer.on_shed(request.trace)
            return
        request.admitted = True
        self.slo.note_admitted(request)
        self._outstanding += 1
        if self._emit_admit is not None:
            self._emit_admit(
                tenant=request.tenant,
                function=request.function,
                request=request.request_id,
            )
        self.batcher.add(request)

    def arrivals_finished(self, tenant: str) -> None:
        self._arrivals_open -= 1
        if self._arrivals_open == 0:
            self.batcher.flush_all()
            self._maybe_drain()

    # ------------------------------------------------------------------
    # external control-plane interface (the service daemon's seam)
    # ------------------------------------------------------------------
    def hold_open(self) -> None:
        """Keep the gateway from draining while an external injector owns it.

        Each hold counts like one still-running arrival stream; the
        gateway only drains once every hold is released *and* the normal
        drain conditions are met.
        """
        self._holds += 1
        self._arrivals_open += 1

    def release_hold(self) -> None:
        """Release one :meth:`hold_open`; may trigger the normal drain."""
        if self._holds <= 0:
            raise RuntimeError("release_hold() without a matching hold_open()")
        self._holds -= 1
        self.arrivals_finished("<hold>")

    def inject_request(self, tenant: str, function: str, items: int) -> Request:
        """Offer one externally-sourced request at the current sim time.

        This is the daemon's ``submit kind=requests`` path: identical to
        what an arrival process does, so an injected request and a
        scenario-generated one are indistinguishable downstream.
        """
        request = Request(
            request_id=self.next_request_id(),
            tenant=tenant,
            function=function,
            items=items,
            arrived_at=self.sim.now,
        )
        self.offer(request)
        return request

    def quiesced(self) -> bool:
        """No queued/in-flight work and only holds keep the gateway open."""
        if self._drained:
            return True
        return (
            self._outstanding == 0
            and self.batcher.pending() == 0
            and self._arrivals_open == self._holds
        )

    def apply_scenario(self, scenario, scenario_name: str = "custom") -> Dict[str, Any]:
        """Live preset swap: re-point every mutable serving knob.

        Applied between windows by the service daemon.  Token buckets for
        reconfigured tenants restart full (documented reconfigure
        semantics); SLO statistics for existing tenants are preserved --
        only the target changes.  Tenants absent from the new scenario
        keep serving under their old spec until their streams drain.
        """
        applied: Dict[str, Any] = {
            "scenario": scenario_name,
            "max_batch": scenario.max_batch,
            "max_wait_ns": scenario.max_wait_ns,
            "tenants": sorted(t.name for t in scenario.tenants),
        }
        self.batcher.max_batch = scenario.max_batch
        self.batcher.max_wait_ns = scenario.max_wait_ns
        self.admission.max_backlog = scenario.max_backlog
        self.autoscaler.period_ns = scenario.autoscaler_period_ns
        self.autoscaler.scale_up_hotness = scenario.scale_up_hotness
        self.autoscaler.max_replicas = scenario.max_replicas
        self.autoscaler.cooldown_periods = scenario.cooldown_periods
        for t in scenario.tenants:
            self._specs[t.name] = t
            existing = self.slo._tenants.get(t.name)
            if existing is not None:
                existing.slo_ns = t.slo_ns
            else:
                self.slo.configure_tenant(t.name, t.slo_ns)
            self.admission.configure_tenant(t.name, t.admit_rate_rps, t.admit_burst)
        return applied

    # ------------------------------------------------------------------
    # batcher-side interface
    # ------------------------------------------------------------------
    def dispatch_batch(self, key: BatchKey, batch: List[Request]) -> None:
        """One coalesced batch becomes a single-task NDRange job."""
        tenant, function, shape = key
        spec = self._specs.get(tenant)
        items = sum(r.items for r in batch)
        worker = next(self._rr_worker) % len(self.engine.node.workers)
        tracer = self.request_tracer
        tags = None
        if tracer is not None:
            # provenance the engine layer echoes into its events: which
            # requests (= trace ids) this coalesced task carries
            tags = {
                "tenant": tenant,
                "requests": [r.request_id for r in batch],
                "traces": [r.trace.trace_id for r in batch],
            }
        task = Task(
            function=function,
            items=items,
            data_worker=worker,
            affinity_worker=worker,
            input_bytes=items * 4,
            output_bytes=items * 4,
            tags=tags,
        )
        handle = self.manager.submit_job(
            TaskGraph([task]),
            policy=spec.policy if spec else None,
            priority=spec.priority if spec else 1,
        )
        if tracer is not None:
            worker_lane = self.engine.node.worker(worker).name
            for r in batch:
                tracer.on_dispatch(
                    r.trace,
                    job_id=handle.job_id,
                    worker=worker,
                    batch_size=len(batch),
                    batch_items=items,
                    shape=shape,
                    worker_lane=worker_lane,
                )
        if self._emit_batch is not None:
            attrs = dict(
                tenant=tenant,
                function=function,
                shape_class=shape,
                size=len(batch),
                items=items,
                job=handle.job_id,
            )
            if tags is not None:
                attrs["requests"] = tags["requests"]
            self._emit_batch(**attrs)
        spawn(
            self.sim,
            self._completion_waiter(handle, batch),
            name=f"serve.batch{handle.job_id}",
        )

    def _completion_waiter(self, handle, batch: List[Request]) -> Generator:
        yield handle.done
        now = self.sim.now
        emit_complete = self._emit_complete
        tracer = self.request_tracer
        alerter = self.alerter
        # the batch rode exactly one task; its WorkItem carries execution
        # start time, device and the retry/fallback history
        item = handle.items[0] if handle.items else None
        for request in batch:
            request.completed_at = now
            self.slo.note_completed(request)
            if emit_complete is not None:
                emit_complete(
                    tenant=request.tenant,
                    function=request.function,
                    latency_ns=request.latency_ns,
                    request=request.request_id,
                )
            if tracer is not None or alerter is not None:
                slo_ns = self.slo.tenant(request.tenant).slo_ns
                if tracer is not None:
                    tracer.on_complete(
                        request.trace, item, violated=request.latency_ns > slo_ns
                    )
                if alerter is not None:
                    alerter.observe(
                        now, request.tenant, request.latency_ns, slo_ns
                    )
        self._outstanding -= len(batch)
        self._maybe_drain()

    # ------------------------------------------------------------------
    # chaos-facing degraded-mode hooks (no-ops without a brownout policy)
    # ------------------------------------------------------------------
    def enter_brownout(self, reason: str) -> None:
        """A failure domain went down: degrade until :meth:`exit_brownout`."""
        if self.brownout is not None:
            self.brownout.enter(reason)

    def exit_brownout(self) -> None:
        """The outage healed (or the restore finished): lift one latch."""
        if self.brownout is not None:
            self.brownout.exit()

    def load_snapshot(self) -> Dict[str, Any]:
        """Instantaneous load counters for an external control plane."""
        return {
            "outstanding": self._outstanding,
            "queued": self.batcher.pending(),
            "arrivals_open": self._arrivals_open,
            "drained": self._drained,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _maybe_drain(self) -> None:
        if (
            self._drained
            or self._arrivals_open > 0
            or self._outstanding > 0
            or self.batcher.pending() > 0
        ):
            return
        self._drained = True
        self._end_ns = self.sim.now
        self.autoscaler.stop()
        if self._autoscaler_proc is not None and self._autoscaler_proc.alive:
            self._autoscaler_proc.interrupt("serving drained")
        self.engine.stop()
        if self.telemetry is not None:
            self.telemetry.event(
                "serve.drain",
                f"{self.engine.node.name}.gateway",
                horizon_ns=self._end_ns,
            )

    def start(self) -> None:
        """Spawn the arrival streams and the autoscaler.  Idempotent."""
        if self._started:
            return
        self._started = True
        self.engine.start()
        if self._spawn_arrivals:
            for spec in self.scenario.tenants:
                spawn(
                    self.sim,
                    arrival_process(self, spec, self.seed),
                    name=f"serve.arrivals.{spec.name}",
                )
        self._autoscaler_proc = spawn(
            self.sim, self.autoscaler.run(), name="serve.autoscaler"
        )

    def run(self) -> ServingReport:
        """Serve the whole open-loop scenario, return the report."""
        self.start()
        self.sim.run()
        return self.report()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> ServingReport:
        horizon = self._end_ns if self._end_ns is not None else self.sim.now
        engine = self.engine
        sup = engine.supervisor
        offered = sum(t.offered for t in self.slo.tenants())
        admitted = sum(t.admitted for t in self.slo.tenants())
        completed = sum(t.completed for t in self.slo.tenants())
        shed = sum(t.shed_total for t in self.slo.tenants())
        a = self.autoscaler.stats
        machine = {
            "workers": len(engine.node.workers),
            "tasks": self.batcher.batches_flushed,
            "sw_calls": sum(s.sw_chosen for s in engine.schedulers),
            "hw_calls": sum(s.hw_chosen for s in engine.schedulers),
            "energy_pj": engine.node.ledger.total_pj(),
            "reconfigurations": sum(
                w.reconfig.reconfigurations for w in engine.node.workers
            ),
            "fabric_evictions": sum(
                w.reconfig.evictions for w in engine.node.workers
            ),
            "worker_failures": len(sup.failures) if sup is not None else 0,
            "tasks_retried": sum(rec.tasks_retried for rec in engine.jobs),
            "tasks_unrecovered": sum(
                rec.tasks_unrecovered for rec in engine.jobs
            ),
        }
        return ServingReport(
            scenario=self.scenario_name,
            seed=self.seed,
            horizon_ns=horizon,
            offered=offered,
            admitted=admitted,
            shed=shed,
            completed=completed,
            unrecovered=admitted - completed,
            batches=self.batcher.batches_flushed,
            mean_batch_size=self.batcher.mean_batch_size,
            flushes_full=self.batcher.flushes_full,
            flushes_timeout=self.batcher.flushes_timeout,
            admission_verdicts=dict(self.admission.verdicts),
            tenants=self.slo.summary(horizon),
            autoscaler={
                "evaluations": a.evaluations,
                "loads": a.loads,
                "replicas": a.replicas,
                "evictions": a.evictions,
                "slo_triggers": a.slo_triggers,
                "regions_configured": a.regions_configured,
                "actions": list(a.actions),
            },
            machine=machine,
            tracing=(
                self.request_tracer.report_block()
                if self.request_tracer is not None
                else {}
            ),
            alerts=(
                self.alerter.report_block() if self.alerter is not None else {}
            ),
            degraded=(
                self.brownout.report_block()
                if self.brownout is not None
                else {}
            ),
        )


def build_serving_gateway(
    preset: str = "steady",
    seed: int = 0,
    telemetry=None,
    fault_tolerance=None,
    max_variants: int = 2,
    tracing: Optional[TraceConfig] = None,
    alerts: Optional[BurnRatePolicy] = None,
    brownout: Optional[BrownoutPolicy] = None,
    warm_start=False,
    spawn_arrivals: bool = True,
) -> "ServingGateway":
    """Build (but do not run) the serving machine for one preset.

    The shared construction path for :func:`run_serving_experiment` and
    the service daemon's serving epochs: same build order, same seeds,
    so a daemon-built gateway is byte-identical to a batch one.
    ``warm_start`` may be ``True`` or a saved-snapshot path (see
    :func:`repro.experiments.resolve_warm_start`); templated bring-up is
    bit-identical to cold, so warm never changes the report.
    """
    from repro.core.runtime.engine import ExecutionEngine
    from repro.experiments import resolve_warm_start
    from repro.presets import build_preset_node, compiled_suite, serving_preset
    from repro.sim import Simulator

    scenario = serving_preset(preset)
    warm = resolve_warm_start(warm_start, scenario.node)
    registry, library = compiled_suite(max_variants=max_variants)
    sim = Simulator()
    if callable(telemetry):
        # the hub needs the simulator this builder creates: a factory
        # (sim -> hub) lets the service daemon attach one per epoch
        telemetry = telemetry(sim)
    node = build_preset_node(sim, scenario.node, warm=warm)
    engine = ExecutionEngine(
        node,
        registry,
        library,
        use_daemon=False,        # the autoscaler owns the Fig. 5 loop here
        telemetry=telemetry,
        fault_tolerance=fault_tolerance,
    )
    return ServingGateway(
        engine,
        scenario,
        seed=seed,
        scenario_name=preset,
        telemetry=telemetry,
        tracing=tracing,
        alerts=alerts,
        brownout=brownout,
        spawn_arrivals=spawn_arrivals,
    )


def run_serving_experiment(
    preset: str = "steady",
    seed: int = 0,
    telemetry=None,
    fault_tolerance=None,
    crash: Optional[Tuple[int, float, Optional[float]]] = None,
    max_variants: int = 2,
    tracing: Optional[TraceConfig] = None,
    alerts: Optional[BurnRatePolicy] = None,
    brownout: Optional[BrownoutPolicy] = None,
    domain_kill: Optional[Tuple[str, float, Optional[float]]] = None,
    warm_start=False,
) -> ServingReport:
    """Build a machine for ``preset`` and serve it end to end.

    ``crash`` is an optional ``(worker_id, at_ns, downtime_ns)`` chaos
    overlay (``downtime_ns=None`` makes the crash permanent); arm
    ``fault_tolerance`` alongside it or admitted requests will be lost.
    ``domain_kill`` is the correlated variant: ``(domain_name, at_ns,
    downtime_ns)`` takes down every Worker in one failure domain of the
    default tree at once, and (when ``brownout`` is set) drives the
    gateway into degraded mode for the outage window.  ``tracing`` /
    ``alerts`` / ``brownout`` opt the run into request-scoped causal
    tracing, burn-rate alerting and degraded-mode serving (extra report
    blocks; the canonical report without them is byte-identical to a
    plain run).  ``warm_start`` skips bring-up via the template cache
    (bool, or a saved-snapshot path pinning the topology).
    """
    gateway = build_serving_gateway(
        preset,
        seed=seed,
        telemetry=telemetry,
        fault_tolerance=fault_tolerance,
        max_variants=max_variants,
        tracing=tracing,
        alerts=alerts,
        brownout=brownout,
        warm_start=warm_start,
    )
    sim = gateway.sim
    engine = gateway.engine
    node = engine.node
    chaos_block: Dict[str, Any] = {}
    if crash is not None:
        from repro.chaos import ChaosController

        worker_id, at_ns, downtime_ns = crash
        controller = ChaosController(sim, seed=seed, telemetry=telemetry)
        controller.crash_worker(engine, worker_id, at_ns, downtime_ns=downtime_ns)
        controller.arm()
        chaos_block = {
            "worker": worker_id,
            "at_ns": at_ns,
            "downtime_ns": downtime_ns,
        }
    if domain_kill is not None:
        from repro.chaos import ChaosController
        from repro.chaos.domains import build_domain_tree

        domain_name, at_ns, downtime_ns = domain_kill
        tree = build_domain_tree(len(node.workers))
        controller = ChaosController(sim, seed=seed, telemetry=telemetry)
        controller.attach_gateway(gateway)
        controller.fail_domain(
            engine, tree.domain(domain_name), at_ns, downtime_ns=downtime_ns
        )
        controller.arm()
        chaos_block = {
            "domain": domain_name,
            "workers": list(tree.members(domain_name)),
            "at_ns": at_ns,
            "downtime_ns": downtime_ns,
        }
    report = gateway.run()
    report.chaos = chaos_block
    return report
