"""The serving layer: open-loop traffic onto the reconfigurable machine.

The ROADMAP's north star is a machine that "serves heavy traffic from
millions of users"; this package is that demand side.  Seed-
deterministic arrival processes emit typed kernel requests, an admission
controller sheds what the machine cannot absorb, a dynamic batcher
coalesces compatible requests into NDRange jobs, an SLO tracker keeps
per-tenant p50/p95/p99 / goodput / shed-rate state, and an autoscaler
closes the paper's Fig. 5 loop -- execution history plus SLO pressure
driving which accelerators occupy the fabric, period by period.

Entry points: :class:`ServingGateway` for hand-wired setups,
:func:`run_serving_experiment` + the ``SERVING_PRESETS`` in
:mod:`repro.presets` for the CLI / CI / test path
(``python -m repro serve --preset flash-crowd --seed 7``).
"""

from repro.serving.admission import (
    OK,
    QUEUE_FULL,
    RATE_LIMIT,
    AdmissionController,
    AdmissionVerdict,
    TokenBucket,
)
from repro.serving.alerts import BurnRateAlerter, BurnRatePolicy
from repro.serving.arrivals import ARRIVAL_KINDS, arrival_process
from repro.serving.autoscaler import Autoscaler, AutoscalerStats
from repro.serving.batcher import DynamicBatcher
from repro.serving.brownout import BROWNOUT, BrownoutController, BrownoutPolicy
from repro.serving.gateway import (
    ServingGateway,
    ServingReport,
    build_serving_gateway,
    run_serving_experiment,
)
from repro.serving.requests import Request, shape_class
from repro.serving.slo import SLOTracker, TenantSLO
from repro.serving.tracing import (
    STAGES,
    CriticalPathAnalyzer,
    RequestTracer,
    TraceConfig,
    TraceContext,
)

__all__ = [
    "ARRIVAL_KINDS",
    "AdmissionController",
    "AdmissionVerdict",
    "Autoscaler",
    "AutoscalerStats",
    "BROWNOUT",
    "BrownoutController",
    "BrownoutPolicy",
    "BurnRateAlerter",
    "BurnRatePolicy",
    "CriticalPathAnalyzer",
    "DynamicBatcher",
    "OK",
    "QUEUE_FULL",
    "RATE_LIMIT",
    "Request",
    "RequestTracer",
    "SLOTracker",
    "STAGES",
    "ServingGateway",
    "ServingReport",
    "TenantSLO",
    "TokenBucket",
    "TraceConfig",
    "TraceContext",
    "arrival_process",
    "build_serving_gateway",
    "run_serving_experiment",
    "shape_class",
]
