"""The SLO-driven autoscaler: Fig. 5's loop closed against live demand.

Each control period the autoscaler

1. delegates to the existing
   :class:`~repro.core.runtime.daemon.ReconfigurationDaemon` -- decayed
   hotness ranks unhosted functions and loads the most beneficial ones,
   while cold hosted functions are evicted with hysteresis (that is the
   paper's history-driven daemon, unchanged), and then
2. adds the *elastic* dimension the daemon does not have: when a tenant's
   streaming p99 runs past its SLO target, or a hosted function's
   hotness crosses ``scale_up_hotness``, the autoscaler configures an
   additional **replica** of the hottest hosted function on a Worker not
   yet hosting it (up to ``max_replicas``), so hardware bandwidth scales
   with demand rather than with the static one-region-per-function the
   daemon converges to.

Hysteresis against thrashing: every scale-up puts the function on a
``cooldown_periods``-long cooldown before it may scale again, and
eviction of cold functions inherits the daemon's consecutive-cold-period
streak requirement.

Every action (daemon load, daemon evict, replica) is recorded on
``stats.actions`` with its simulated timestamp -- the serving report's
audit trail of how the machine reshaped itself under load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.core.runtime.daemon import ReconfigurationDaemon
from repro.fabric.region import RegionState
from repro.serving.slo import SLOTracker
from repro.sim import Timeout


@dataclass
class AutoscalerStats:
    evaluations: int = 0
    loads: int = 0
    replicas: int = 0
    evictions: int = 0
    slo_triggers: int = 0
    actions: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def regions_configured(self) -> int:
        """Regions the loop (re)configured in response to load."""
        return self.loads + self.replicas


class Autoscaler:
    """Periodic controller over the reconfiguration daemon + replicas."""

    def __init__(
        self,
        engine,
        slo: SLOTracker,
        period_ns: float = 100_000.0,
        scale_up_hotness: float = 8.0,
        max_replicas: int = 2,
        cooldown_periods: int = 2,
        min_completions_for_slo: int = 20,
        daemon_kwargs: Optional[Dict[str, Any]] = None,
        telemetry=None,
    ) -> None:
        if period_ns <= 0:
            raise ValueError("period must be positive")
        if max_replicas < 1:
            raise ValueError("max_replicas must be >= 1")
        self.engine = engine
        self.node = engine.node
        self.slo = slo
        self.period_ns = period_ns
        self.scale_up_hotness = scale_up_hotness
        self.max_replicas = max_replicas
        self.cooldown_periods = cooldown_periods
        self.min_completions_for_slo = min_completions_for_slo
        self.telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        self.daemon = ReconfigurationDaemon(
            engine.node,
            engine.unilogic,
            engine.library,
            engine.registry,
            engine.history,
            period_ns=period_ns,
            telemetry=telemetry,
            **(daemon_kwargs or {}),
        )
        self.stats = AutoscalerStats()
        self._cooldown: Dict[str, int] = {}
        self._running = True
        # opt-in: point this at a BurnRateAlerter (or anything with
        # ``is_burning()``) and a firing alert counts as SLO pressure --
        # never wired automatically, so alerting stays observe-only by
        # default and traced runs do not perturb scaling decisions
        self.alert_source = None
        # opt-in: point this at a BrownoutController (anything with an
        # ``active`` attribute) and replica scale-ups pause while the
        # machine is degraded -- scaling into a half-dead machine only
        # burns reconfiguration time the restore needs
        self.brownout_source = None

    def stop(self) -> None:
        self._running = False
        self.daemon.stop()

    # ------------------------------------------------------------------
    def _slo_pressure(self) -> bool:
        """Any tenant whose streaming p99 is past its target?"""
        if self.alert_source is not None and self.alert_source.is_burning():
            return True
        for t in self.slo.tenants():
            if (
                t.completed >= self.min_completions_for_slo
                and t.p99.value > t.slo_ns
            ):
                return True
        return False

    def _replica_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for w in self.node.workers:
            for r in w.fabric.regions:
                if r.state is RegionState.READY and r.function:
                    counts[r.function] = counts.get(r.function, 0) + 1
        return counts

    def _replica_target(self, function: str):
        """Worker to host an additional replica: prefer an empty region
        on a Worker not already hosting the function, ties to lowest id."""
        candidates = []
        for w in self.node.workers:
            hosts = any(
                r.state is RegionState.READY and r.function == function
                for r in w.fabric.regions
            )
            if hosts:
                continue
            empties = len(w.fabric.free_regions())
            candidates.append((-empties, w.worker_id, w))
        if not candidates:
            return None
        candidates.sort(key=lambda c: (c[0], c[1]))
        best = candidates[0]
        if -best[0] == 0:
            return None                 # no empty region anywhere useful
        return best[2]

    def _record(self, action: str, function: str, **attrs: Any) -> None:
        entry = {
            "at_ns": self.node.sim.now,
            "action": action,
            "function": function,
        }
        entry.update(attrs)
        self.stats.actions.append(entry)
        if self.telemetry is not None:
            self.telemetry.event(
                f"autoscaler.{action.replace('-', '_')}",
                f"{self.node.name}.autoscaler",
                function=function,
                **attrs,
            )

    # ------------------------------------------------------------------
    def evaluate(self) -> Generator:
        """One control period (a simulation process -- loads take time)."""
        self.stats.evaluations += 1
        loads_before = len(self.daemon.stats.functions_loaded)
        evicts_before = len(self.daemon.stats.functions_evicted)
        yield from self.daemon.evaluate()
        for fn in self.daemon.stats.functions_loaded[loads_before:]:
            self.stats.loads += 1
            self._record("load", fn)
        for fn in self.daemon.stats.functions_evicted[evicts_before:]:
            self.stats.evictions += 1
            self._record("evict", fn)

        for fn in list(self._cooldown):
            self._cooldown[fn] -= 1
            if self._cooldown[fn] <= 0:
                del self._cooldown[fn]

        if self.brownout_source is not None and self.brownout_source.active:
            return                       # degraded: hold replica scale-ups
        pressure = self._slo_pressure()
        if pressure:
            self.stats.slo_triggers += 1
        replicas = self._replica_counts()
        hosted_hot = sorted(
            (
                (self.daemon.hotness.get(fn, 0.0), fn)
                for fn in replicas
            ),
            reverse=True,
        )
        for hotness, function in hosted_hot:
            if function in self._cooldown:
                continue
            if replicas[function] >= self.max_replicas:
                continue
            if not pressure and hotness < self.scale_up_hotness:
                continue
            worker = self._replica_target(function)
            if worker is None:
                continue
            capacity = max(
                (r.capacity for r in worker.fabric.regions),
                key=lambda c: c.area_units(),
            )
            module = self.engine.library.best_variant(function, capacity=capacity)
            if module is None:
                continue
            region = yield from worker.load_module(module)
            if region is not None:
                self.stats.replicas += 1
                self._cooldown[function] = self.cooldown_periods
                self._record(
                    "replica",
                    function,
                    worker=worker.worker_id,
                    region=region.region_id,
                    hotness=hotness,
                    slo_pressure=pressure,
                )
            break                        # at most one replica per period

    def run(self) -> Generator:
        """The periodic control loop (spawn as a simulation process)."""
        while self._running:
            yield Timeout(self.period_ns)
            if not self._running:
                return
            yield from self.evaluate()
