"""Seed-deterministic arrival processes (the demand side of Fig. 5).

Each tenant's traffic is one simulation process that samples
interarrival gaps from a per-tenant ``random.Random`` seeded as
``f"{seed}:{tenant}:arrivals"`` (the chaos-layer idiom), so two runs
with the same seed offer byte-identical request streams while different
tenants stay decorrelated.

Four generators, selected by ``TenantSpec.arrival``:

- ``poisson`` -- memoryless arrivals at a fixed rate,
- ``bursty`` -- a two-state MMPP: exponential sojourns alternate between
  a base-rate phase and a burst phase at ``rate * burst_multiplier``
  (the flash crowd),
- ``diurnal`` -- a Poisson process whose rate ramps linearly from
  ``diurnal_low`` to ``diurnal_high`` times the base rate across the
  tenant's request budget (a compressed day),
- ``trace`` -- replay of explicit offsets, for captured workloads.

Rates are requests per second of *simulated* time; the simulator clock
is in nanoseconds.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Generator, Iterator

from repro.serving.requests import Request
from repro.sim import Timeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.presets import TenantSpec

ARRIVAL_KINDS = ("poisson", "bursty", "diurnal", "trace")

_NS_PER_S = 1e9


def _gaps_poisson(rng: random.Random, spec: "TenantSpec") -> Iterator[float]:
    for _ in range(spec.requests):
        yield rng.expovariate(spec.rate_rps) * _NS_PER_S


def _gaps_bursty(rng: random.Random, spec: "TenantSpec") -> Iterator[float]:
    """Two-state MMPP: base phase / burst phase with exponential sojourns."""
    burst_rate = spec.rate_rps * spec.burst_multiplier
    # sojourn means chosen so the long-run burst-time fraction matches
    # spec.burst_fraction over one base+burst cycle
    cycle_ns = spec.requests / spec.rate_rps * _NS_PER_S / 4.0
    mean_burst_ns = cycle_ns * spec.burst_fraction
    mean_base_ns = cycle_ns * (1.0 - spec.burst_fraction)
    now = 0.0
    in_burst = False
    phase_end = rng.expovariate(1.0 / mean_base_ns)
    for _ in range(spec.requests):
        while now >= phase_end:
            in_burst = not in_burst
            mean = mean_burst_ns if in_burst else mean_base_ns
            phase_end += rng.expovariate(1.0 / mean)
        rate = burst_rate if in_burst else spec.rate_rps
        gap = rng.expovariate(rate) * _NS_PER_S
        now += gap
        yield gap


def _gaps_diurnal(rng: random.Random, spec: "TenantSpec") -> Iterator[float]:
    span = max(1, spec.requests - 1)
    for i in range(spec.requests):
        frac = i / span
        rate = spec.rate_rps * (
            spec.diurnal_low + (spec.diurnal_high - spec.diurnal_low) * frac
        )
        yield rng.expovariate(rate) * _NS_PER_S


def _gaps_trace(rng: random.Random, spec: "TenantSpec") -> Iterator[float]:
    prev = 0.0
    for offset in spec.trace_offsets_ns:
        if offset < prev:
            raise ValueError("trace offsets must be non-decreasing")
        yield offset - prev
        prev = offset


_GAP_GENERATORS = {
    "poisson": _gaps_poisson,
    "bursty": _gaps_bursty,
    "diurnal": _gaps_diurnal,
    "trace": _gaps_trace,
}


def arrival_process(gateway, spec: "TenantSpec", seed: int) -> Generator:
    """One tenant's traffic source (spawn as a simulation process).

    Offers every request to ``gateway.offer`` and finally calls
    ``gateway.arrivals_finished(tenant)`` so the gateway knows when the
    open-loop demand has drained.
    """
    if spec.arrival not in _GAP_GENERATORS:
        known = ", ".join(ARRIVAL_KINDS)
        raise KeyError(f"unknown arrival kind {spec.arrival!r}; choose from: {known}")
    rng = random.Random(f"{seed}:{spec.name}:arrivals")
    sim = gateway.sim
    for i, gap in enumerate(_GAP_GENERATORS[spec.arrival](rng, spec)):
        if gap > 0:
            yield Timeout(gap)
        items = rng.randint(*spec.items_range)
        function = spec.functions[rng.randrange(len(spec.functions))]
        gateway.offer(
            Request(
                request_id=gateway.next_request_id(),
                tenant=spec.name,
                function=function,
                items=items,
                arrived_at=sim.now,
            )
        )
    gateway.arrivals_finished(spec.name)
