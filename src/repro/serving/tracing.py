"""Request-scoped causal tracing for the serving pipeline.

Every offered request can carry a :class:`TraceContext` -- an explicit
per-request object handed along the gateway -> batcher -> runtime call
chain (never a global, so sharded partitions can merge span streams
deterministically later).  The context accumulates what each stage
learns (admission verdict, batch membership, job id, executing worker,
device, retries) and, at the request's terminal event, the
:class:`RequestTracer` turns it into a parent-linked span tree on the
unified :class:`~repro.telemetry.tracing.Tracer`:

::

    request#17                 kind=request   lane=serve.<tenant>
      +- admission             kind=admission   (instant: verdict)
      +- batch.wait            kind=batch.wait  arrived -> batched
      +- sched.queue           kind=sched.queue batched -> execution start
      +- execute               kind=execute     start -> completed
                                (device, worker, attempts, fallback)

The four stages partition the request's end-to-end latency exactly --
``admission`` is an instant verdict (0 ns), and the other three tile
``[arrived_at, completed_at]`` with no gaps -- which is what lets the
:class:`CriticalPathAnalyzer` reconcile per-stage sums against
end-to-end latency in the canonical report.  Reconfiguration /
bitstream-load stalls and interconnect/DMA transfers happen *inside*
the execute stage (the UNILOGIC invoke path); they stay attributable
through the worker-lane spans and ``fabric.*`` events the runtime
already emits, keyed by the same job id the context records.

Sampling is head-based and seed-stable: ``request_id % sample_every ==
0`` decides at offer time.  A non-sampled request that then violates
its tenant's SLO gets the identical tree synthesized retroactively at
completion (every timestamp is already on the context), so slow
requests are never invisible.  With tracing off the gateway holds no
tracer at all and reports stay byte-identical to seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.telemetry.tracing import Tracer

#: Canonical stage order -- also the tie-break for dominant-stage.
STAGES = ("admission", "batch_wait", "sched_queue", "execute")


@dataclass
class TraceConfig:
    """How the serving layer samples and reports request traces."""

    sample_every: int = 8            # head-sample 1 request in N
    sample_on_violation: bool = True # always trace SLO violators
    top_k: int = 5                   # slowest traces surfaced in the report

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if self.top_k < 0:
            raise ValueError("top_k must be >= 0")


@dataclass
class TraceContext:
    """The per-request causal context, propagated explicitly.

    Created at offer time, carried on the request through the batcher,
    stamped by the gateway at dispatch, finalized by the completion
    waiter.  ``trace_id`` is the request id -- unique per run and
    stable across replays of the same seed.
    """

    trace_id: int
    request: Any                     # the serving Request
    sampled: bool
    verdict: str = ""
    backlog: int = 0
    job_id: Optional[int] = None
    batch_size: int = 0
    batch_items: int = 0
    shape_class: int = 0
    worker: Optional[int] = None
    worker_lane: str = ""            # the executing worker's trace lane
    device: Optional[str] = None
    attempts: int = 0
    fell_back: bool = False
    exec_started_at: Optional[float] = None


class CriticalPathAnalyzer:
    """Folds per-request stage decompositions into the report blocks.

    Keeps per-(tenant, stage) aggregates plus every request's summary
    row (a few floats each) so the report can rank the top-K slowest
    traces with their dominant stage.  All requests feed the breakdown
    -- sampling only gates span *emission*, never the statistics, so
    the table is exact.
    """

    def __init__(self, top_k: int = 5) -> None:
        self.top_k = top_k
        self._agg: Dict[str, Dict[str, Dict[str, float]]] = {}
        self._rows: List[Dict[str, Any]] = []

    def record(
        self,
        tenant: str,
        function: str,
        request_id: int,
        stages: Dict[str, float],
        latency_ns: float,
        sampled: str,
    ) -> None:
        per_tenant = self._agg.setdefault(tenant, {})
        for stage, dur in stages.items():
            cell = per_tenant.setdefault(
                stage, {"count": 0, "total_ns": 0.0, "max_ns": 0.0}
            )
            cell["count"] += 1
            cell["total_ns"] += dur
            if dur > cell["max_ns"]:
                cell["max_ns"] = dur
        dominant = max(STAGES, key=lambda s: (stages.get(s, 0.0), -STAGES.index(s)))
        self._rows.append(
            {
                "request_id": request_id,
                "tenant": tenant,
                "function": function,
                "latency_ns": latency_ns,
                "dominant_stage": dominant,
                "stages": {s: stages.get(s, 0.0) for s in STAGES},
                "sampled": sampled,
            }
        )

    def breakdown(self) -> Dict[str, Any]:
        """The canonical per-tenant/per-stage table."""
        out: Dict[str, Any] = {}
        for tenant in sorted(self._agg):
            stages = {}
            latency_total = 0.0
            for stage in STAGES:
                cell = self._agg[tenant].get(stage)
                if cell is None:
                    continue
                stages[stage] = {
                    "count": int(cell["count"]),
                    "total_ns": cell["total_ns"],
                    "mean_ns": cell["total_ns"] / cell["count"],
                    "max_ns": cell["max_ns"],
                }
                latency_total += cell["total_ns"]
            for stage, cell in stages.items():
                cell["share"] = (
                    cell["total_ns"] / latency_total if latency_total else 0.0
                )
            out[tenant] = {"stages": stages, "latency_total_ns": latency_total}
        return out

    def top_slowest(self) -> List[Dict[str, Any]]:
        """The K slowest requests (ties broken by request id: stable)."""
        ranked = sorted(
            self._rows, key=lambda r: (-r["latency_ns"], r["request_id"])
        )
        return ranked[: self.top_k]

    @property
    def recorded(self) -> int:
        return len(self._rows)


class RequestTracer:
    """Creates contexts, applies the sampling policy, emits span trees."""

    def __init__(self, tracer: Tracer, config: Optional[TraceConfig] = None) -> None:
        self.tracer = tracer
        self.config = config or TraceConfig()
        self.analyzer = CriticalPathAnalyzer(top_k=self.config.top_k)
        self.sampled_traces = 0
        self.violation_upgrades = 0
        # causal spans this tracer emitted (the sink may also hold lane
        # spans from the runtime when it is the shared hub tracer)
        self.spans_emitted = 0

    # ------------------------------------------------------------------
    # lifecycle hooks (called by the gateway as the request moves)
    # ------------------------------------------------------------------
    def context(self, request: Any) -> TraceContext:
        """Open the causal context at offer time (head sampling here)."""
        sampled = request.request_id % self.config.sample_every == 0
        return TraceContext(
            trace_id=request.request_id, request=request, sampled=sampled
        )

    def on_verdict(self, ctx: TraceContext, accepted: bool, reason: str, backlog: int) -> None:
        ctx.verdict = "admit" if accepted else reason
        ctx.backlog = backlog

    def on_shed(self, ctx: TraceContext) -> None:
        """Terminal for a shed request: a two-span tree if sampled."""
        if ctx.sampled:
            self.sampled_traces += 1
            self._emit_shed_tree(ctx)

    def on_dispatch(
        self,
        ctx: TraceContext,
        job_id: int,
        worker: int,
        batch_size: int,
        batch_items: int,
        shape: int,
        worker_lane: str = "",
    ) -> None:
        ctx.job_id = job_id
        ctx.worker = worker
        ctx.worker_lane = worker_lane
        ctx.batch_size = batch_size
        ctx.batch_items = batch_items
        ctx.shape_class = shape

    def on_complete(self, ctx: TraceContext, item: Any, violated: bool) -> None:
        """Terminal for a completed request: decompose, maybe emit.

        ``item`` is the runtime WorkItem the request's batch rode
        (execution start time, device, retry/fallback history).
        """
        if item is not None:
            ctx.device = item.device_used
            ctx.attempts = item.attempts
            ctx.fell_back = getattr(item, "fell_back", False)
            ctx.exec_started_at = item.started_at
        r = ctx.request
        exec_start = (
            ctx.exec_started_at
            if ctx.exec_started_at is not None
            else r.batched_at
        )
        stages = {
            "admission": 0.0,
            "batch_wait": r.batched_at - r.arrived_at,
            "sched_queue": exec_start - r.batched_at,
            "execute": r.completed_at - exec_start,
        }
        emit = ctx.sampled or (violated and self.config.sample_on_violation)
        sampled_how = "head" if ctx.sampled else ("slo" if emit else "none")
        self.analyzer.record(
            tenant=r.tenant,
            function=r.function,
            request_id=r.request_id,
            stages=stages,
            latency_ns=r.completed_at - r.arrived_at,
            sampled=sampled_how,
        )
        if emit:
            self.sampled_traces += 1
            if not ctx.sampled:
                self.violation_upgrades += 1
            self._emit_complete_tree(ctx, stages, exec_start, sampled_how)

    # ------------------------------------------------------------------
    # span emission
    # ------------------------------------------------------------------
    def _add(self, *args: Any, **kwargs: Any) -> Any:
        self.spans_emitted += 1
        return self.tracer.add(*args, **kwargs)

    def _emit_shed_tree(self, ctx: TraceContext) -> None:
        r = ctx.request
        lane = f"serve.{r.tenant}"
        root = self._add(
            lane,
            f"request#{r.request_id}",
            start=r.arrived_at,
            end=r.arrived_at,
            trace_id=ctx.trace_id,
            kind="request",
            tenant=r.tenant,
            function=r.function,
            items=r.items,
            outcome="shed",
            sampled="head",
        )
        self._add(
            lane,
            "admission",
            start=r.arrived_at,
            end=r.arrived_at,
            trace_id=ctx.trace_id,
            parent=root,
            kind="admission",
            verdict=ctx.verdict,
            backlog=ctx.backlog,
        )

    def _emit_complete_tree(
        self,
        ctx: TraceContext,
        stages: Dict[str, float],
        exec_start: float,
        sampled_how: str,
    ) -> None:
        r = ctx.request
        lane = f"serve.{r.tenant}"
        root = self._add(
            lane,
            f"request#{r.request_id}",
            start=r.arrived_at,
            end=r.completed_at,
            trace_id=ctx.trace_id,
            kind="request",
            tenant=r.tenant,
            function=r.function,
            items=r.items,
            outcome="completed",
            sampled=sampled_how,
        )
        self._add(
            lane,
            "admission",
            start=r.arrived_at,
            end=r.arrived_at,
            trace_id=ctx.trace_id,
            parent=root,
            kind="admission",
            verdict=ctx.verdict,
            backlog=ctx.backlog,
        )
        self._add(
            lane,
            "batch.wait",
            start=r.arrived_at,
            end=r.batched_at,
            trace_id=ctx.trace_id,
            parent=root,
            kind="batch.wait",
            batch_size=ctx.batch_size,
            batch_items=ctx.batch_items,
            shape_class=ctx.shape_class,
        )
        self._add(
            lane,
            "sched.queue",
            start=r.batched_at,
            end=exec_start,
            trace_id=ctx.trace_id,
            parent=root,
            kind="sched.queue",
            job=ctx.job_id,
            worker=ctx.worker,
        )
        execute = self._add(
            ctx.worker_lane or lane,
            "execute",
            start=exec_start,
            end=r.completed_at,
            trace_id=ctx.trace_id,
            parent=root,
            kind="execute",
            job=ctx.job_id,
            device=ctx.device,
            attempts=ctx.attempts,
        )
        # chaos-path detail rides as children so retries and accelerator
        # fallbacks are visible in the tree, not just as attributes
        if ctx.attempts:
            self._add(
                execute.lane,
                "retry",
                start=exec_start,
                end=exec_start,
                trace_id=ctx.trace_id,
                parent=execute,
                kind="retry",
                attempts=ctx.attempts,
            )
        if ctx.fell_back:
            self._add(
                execute.lane,
                "sw.fallback",
                start=exec_start,
                end=exec_start,
                trace_id=ctx.trace_id,
                parent=execute,
                kind="sw.fallback",
            )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report_block(self) -> Dict[str, Any]:
        """The canonical ``tracing`` block of the ServingReport."""
        return {
            "sample_every": self.config.sample_every,
            "sampled_traces": self.sampled_traces,
            "violation_upgrades": self.violation_upgrades,
            "requests_analyzed": self.analyzer.recorded,
            "spans": self.spans_emitted,
            "breakdown": self.analyzer.breakdown(),
            "top_slowest": self.analyzer.top_slowest(),
        }
