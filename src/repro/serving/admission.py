"""Admission control: bounded backlogs, token buckets, shed verdicts.

The gateway asks the :class:`AdmissionController` for a verdict before a
request touches the batcher.  Two independent gates, per tenant:

- a **token bucket** (``admit_rate_rps`` refill, ``admit_burst`` depth)
  caps the tenant's sustained admitted rate while absorbing short
  bursts, and
- a **bounded backlog**: a tenant with ``max_backlog`` requests already
  admitted-but-incomplete is shed outright -- queueing more work onto an
  overloaded machine only converts latency SLO misses into timeouts.

Shedding is a *verdict*, not an exception: the gateway records the shed
and the arrival stream continues (open-loop traffic does not retry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.serving.requests import Request

#: verdict reasons
OK = "ok"
RATE_LIMIT = "rate-limit"
QUEUE_FULL = "queue-full"


@dataclass(frozen=True)
class AdmissionVerdict:
    accepted: bool
    reason: str                  # OK | RATE_LIMIT | QUEUE_FULL
    tokens_left: float = 0.0
    backlog: int = 0


class TokenBucket:
    """A deterministic continuous-refill token bucket (sim-clocked)."""

    def __init__(self, rate_rps: float, burst: float) -> None:
        if rate_rps <= 0 or burst < 1:
            raise ValueError("token bucket needs rate_rps > 0 and burst >= 1")
        self.rate_per_ns = rate_rps / 1e9
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last_ns = 0.0

    def try_take(self, now_ns: float) -> bool:
        self.tokens = min(
            self.burst, self.tokens + (now_ns - self._last_ns) * self.rate_per_ns
        )
        self._last_ns = now_ns
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Per-tenant token buckets + backlog bounds issuing shed verdicts."""

    def __init__(self, max_backlog: int = 64) -> None:
        if max_backlog < 1:
            raise ValueError("max_backlog must be >= 1")
        self.max_backlog = max_backlog
        self._buckets: Dict[str, TokenBucket] = {}
        self.verdicts: Dict[str, int] = {OK: 0, RATE_LIMIT: 0, QUEUE_FULL: 0}

    def configure_tenant(
        self, tenant: str, admit_rate_rps: float, admit_burst: float
    ) -> None:
        self._buckets[tenant] = TokenBucket(admit_rate_rps, admit_burst)

    def bucket(self, tenant: str) -> Optional[TokenBucket]:
        return self._buckets.get(tenant)

    def admit(
        self, request: Request, now_ns: float, backlog: int
    ) -> AdmissionVerdict:
        """Judge one request given the tenant's current backlog depth."""
        bucket = self._buckets.get(request.tenant)
        if backlog >= self.max_backlog:
            self.verdicts[QUEUE_FULL] += 1
            return AdmissionVerdict(
                False, QUEUE_FULL,
                tokens_left=bucket.tokens if bucket else 0.0,
                backlog=backlog,
            )
        if bucket is not None and not bucket.try_take(now_ns):
            self.verdicts[RATE_LIMIT] += 1
            return AdmissionVerdict(
                False, RATE_LIMIT, tokens_left=bucket.tokens, backlog=backlog
            )
        self.verdicts[OK] += 1
        return AdmissionVerdict(
            True, OK,
            tokens_left=bucket.tokens if bucket else 0.0,
            backlog=backlog,
        )
