"""Degraded-mode serving: brownout while the machine restores.

When a failure domain goes down and a checkpoint restore is in flight,
the gateway cannot pretend capacity is intact.  Brownout is the explicit
degraded state for that window:

- requests from tenants **below the priority floor** are shed outright
  (lowest-priority traffic first -- the interactive tier keeps its
  capacity while batch waits out the outage),
- batch deadlines **stretch** by ``deadline_stretch`` so the batcher
  coalesces harder and the shrunken machine sees fewer, fuller batches,
- ``serving.degraded`` enter/exit events land on telemetry and on the
  report's ``degraded`` timeline, and registered listeners (the
  autoscaler, the burn-rate alerter) observe every transition.

The controller is a depth-counted latch: overlapping domain outages nest
(two concurrent outages = one brownout that exits when the *last* one
heals).  A gateway without a :class:`BrownoutPolicy` has no controller
at all, so disabled-mode serving reports stay byte-identical to seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

#: the shed-verdict reason brownout stamps on dropped requests
BROWNOUT = "brownout"


@dataclass(frozen=True)
class BrownoutPolicy:
    """Knobs of degraded-mode serving."""

    priority_floor: int = 2        # shed tenants with priority < floor
    deadline_stretch: float = 2.0  # batch max-wait multiplier while degraded

    def __post_init__(self) -> None:
        if self.priority_floor < 1:
            raise ValueError("priority floor must be >= 1")
        if self.deadline_stretch < 1.0:
            raise ValueError("deadline stretch must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "priority_floor": self.priority_floor,
            "deadline_stretch": self.deadline_stretch,
        }


class BrownoutController:
    """The gateway's degraded-state latch + timeline."""

    def __init__(
        self,
        policy: BrownoutPolicy,
        sim,
        telemetry=None,
        component: str = "serve.brownout",
    ) -> None:
        self.policy = policy
        self.sim = sim
        self.telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        self._emit = (
            self.telemetry.emitter("serving.degraded", component)
            if self.telemetry is not None
            else None
        )
        self.active = False
        self.reason: Optional[str] = None
        self.entries = 0
        self.shed = 0
        self.degraded_ns = 0.0
        self.timeline: List[Dict[str, Any]] = []
        self._depth = 0
        self._entered_at: Optional[float] = None
        # transition observers: called with (active, reason, ts).  The
        # gateway registers the alerter here; anything polling
        # ``active`` directly (the autoscaler) needs no listener.
        self.listeners: List[Callable[[bool, Optional[str], float], None]] = []

    # ------------------------------------------------------------------
    def enter(self, reason: str) -> None:
        """One outage began.  Nested enters deepen the latch."""
        self._depth += 1
        if self._depth > 1:
            return
        now = self.sim.now
        self.active = True
        self.reason = reason
        self.entries += 1
        self._entered_at = now
        self.timeline.append({"ts": now, "event": "enter", "reason": reason})
        if self._emit is not None:
            self._emit(event="enter", reason=reason)
        for listener in self.listeners:
            listener(True, reason, now)

    def exit(self) -> None:
        """One outage healed; the brownout lifts when the last one does."""
        if self._depth == 0:
            return
        self._depth -= 1
        if self._depth > 0:
            return
        now = self.sim.now
        reason = self.reason
        self.active = False
        self.reason = None
        if self._entered_at is not None:
            self.degraded_ns += now - self._entered_at
            self._entered_at = None
        self.timeline.append({"ts": now, "event": "exit", "reason": reason})
        if self._emit is not None:
            self._emit(event="exit", reason=reason)
        for listener in self.listeners:
            listener(False, reason, now)

    # ------------------------------------------------------------------
    # the gateway's decision hooks
    # ------------------------------------------------------------------
    def should_shed(self, priority: int) -> bool:
        return self.active and priority < self.policy.priority_floor

    def note_shed(self) -> None:
        self.shed += 1

    def wait_stretch(self) -> float:
        """Current batch max-wait multiplier (1.0 when healthy)."""
        return self.policy.deadline_stretch if self.active else 1.0

    # ------------------------------------------------------------------
    def report_block(self) -> Dict[str, Any]:
        """The canonical ``degraded`` block of the ServingReport."""
        degraded = self.degraded_ns
        if self.active and self._entered_at is not None:
            degraded += self.sim.now - self._entered_at
        return {
            "policy": self.policy.to_dict(),
            "entries": self.entries,
            "shed": self.shed,
            "active": self.active,
            "degraded_ns": degraded,
            "timeline": list(self.timeline),
        }
