"""Typed kernel requests -- the unit of demand the serving layer moves.

A :class:`Request` is one user-visible kernel invocation: a named
function from the compiled suite applied to ``items`` work items for one
tenant.  Requests are *not* tasks -- the dynamic batcher coalesces
compatible requests (same tenant, function and shape class) into a
single NDRange :class:`~repro.apps.taskgraph.Task` before anything
reaches the runtime.

The shape class is the power-of-two bucket of the item count: requests
whose sizes round to the same bucket share enough of an execution
profile to ride one accelerator invocation without the small ones
waiting disproportionately on the big ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple


def shape_class(items: int) -> int:
    """The power-of-two size bucket ``items`` falls in (its batch key)."""
    if items < 1:
        raise ValueError(f"items must be >= 1, got {items}")
    return 1 << (items - 1).bit_length()


@dataclass
class Request:
    """One kernel invocation offered by a tenant's arrival process."""

    request_id: int
    tenant: str
    function: str
    items: int
    arrived_at: float                    # sim time the request was offered
    admitted: bool = False
    shed_reason: Optional[str] = None    # "rate-limit" | "queue-full"
    batched_at: Optional[float] = None
    completed_at: Optional[float] = None
    # the causal TraceContext when request tracing is on (None when dark);
    # riding the request is what propagates it through the batcher
    trace: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.items < 1:
            raise ValueError(f"request needs at least one item, got {self.items}")

    @property
    def batch_key(self) -> Tuple[str, str, int]:
        """Requests with equal keys may share one NDRange invocation."""
        return (self.tenant, self.function, shape_class(self.items))

    @property
    def latency_ns(self) -> float:
        """Offer-to-completion latency (0.0 while in flight)."""
        if self.completed_at is None:
            return 0.0
        return self.completed_at - self.arrived_at
