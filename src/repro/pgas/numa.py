"""NUMA domains and inter-domain distances.

Each Worker's DRAM window is one NUMA domain of the Compute Node's
global address space; distances come from interconnect hop counts so the
allocator's notion of "near" matches the machine topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

from repro.interconnect.network import Network
from repro.memory.address import AddressRange


@dataclass(frozen=True)
class NumaDomain:
    """One Worker's memory domain inside the global space."""

    domain_id: int
    worker_node: Hashable     # the network endpoint
    window: AddressRange

    @property
    def size(self) -> int:
        return self.window.size


class NumaMap:
    """Domains plus a hop-distance matrix."""

    def __init__(
        self,
        domains: Sequence[NumaDomain],
        network: Optional[Network] = None,
        distances: Optional[Dict[tuple, int]] = None,
    ) -> None:
        if not domains:
            raise ValueError("need at least one NUMA domain")
        ids = [d.domain_id for d in domains]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate domain ids")
        self.domains: List[NumaDomain] = list(domains)
        self._by_id: Dict[int, NumaDomain] = {d.domain_id: d for d in domains}
        self._distance: Dict[tuple, int] = {}
        if distances is not None:
            # precomputed matrix (shard bring-up templates): distances are
            # a pure function of the topology shape, so identical nodes
            # can share one sweep's result instead of re-running Dijkstra
            self._distance = dict(distances)
        elif network is not None:
            # one Dijkstra sweep per distinct endpoint instead of one
            # shortest-path search per (domain, domain) pair
            nodes = {d.worker_node for d in domains}
            by_src: Dict[Hashable, Dict[Hashable, int]] = {}
            for a in domains:
                if a.worker_node not in by_src:
                    by_src[a.worker_node] = network.hop_distances_from(a.worker_node, nodes)
            for a in domains:
                dist = by_src[a.worker_node]
                for b in domains:
                    self._distance[(a.domain_id, b.domain_id)] = (
                        0 if a.domain_id == b.domain_id else dist[b.worker_node]
                    )

    def __len__(self) -> int:
        return len(self.domains)

    def distance_table(self) -> Dict[tuple, int]:
        """A copy of the (domain, domain) -> hops matrix, suitable for
        seeding another :class:`NumaMap` over an identical topology."""
        return dict(self._distance)

    def domain(self, domain_id: int) -> NumaDomain:
        if domain_id not in self._by_id:
            raise KeyError(f"no NUMA domain {domain_id}")
        return self._by_id[domain_id]

    def domain_of_address(self, addr: int) -> NumaDomain:
        for d in self.domains:
            if d.window.contains(addr):
                return d
        raise ValueError(f"address {addr:#x} not in any NUMA domain")

    def distance(self, a: int, b: int) -> int:
        if (a, b) in self._distance:
            return self._distance[(a, b)]
        # no network given: uniform unit distance
        self.domain(a)
        self.domain(b)
        return 0 if a == b else 1

    def nearest_domains(self, origin: int) -> List[NumaDomain]:
        """Domains sorted by distance from ``origin`` (origin first)."""
        return sorted(
            self.domains, key=lambda d: (self.distance(origin, d.domain_id), d.domain_id)
        )
