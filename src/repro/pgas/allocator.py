"""The topology-aware global memory allocator.

Allocations name an *affinity domain* (where the consuming task runs);
the allocator places them in that NUMA domain if it has room, else in the
nearest domain with space -- the "topology-aware global memory
allocators ... used by the OpenCL runtime for implicit data allocation"
of Section 4.4.

Placement within a domain is page-aligned first-fit with free-list
coalescing; simple, deterministic, and fragmentation behaviour is
realistic enough for the migration experiments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.memory.address import PAGE_SIZE, AddressRange
from repro.pgas.numa import NumaMap

_allocation_ids = itertools.count()


class AllocationError(RuntimeError):
    """No domain can satisfy the request."""


@dataclass
class Allocation:
    """One live global-memory allocation."""

    range: AddressRange
    domain_id: int
    requested_bytes: int
    alloc_id: int = field(default_factory=lambda: next(_allocation_ids))

    @property
    def base(self) -> int:
        return self.range.base

    @property
    def size(self) -> int:
        return self.range.size


def _round_up_pages(size: int) -> int:
    return ((size + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE


class _DomainArena:
    """First-fit free-list arena for one NUMA domain."""

    def __init__(self, window: AddressRange) -> None:
        self.window = window
        self._free: List[AddressRange] = [window]

    def free_bytes(self) -> int:
        return sum(r.size for r in self._free)

    def largest_hole(self) -> int:
        return max((r.size for r in self._free), default=0)

    def allocate(self, size: int) -> Optional[AddressRange]:
        for i, hole in enumerate(self._free):
            if hole.size >= size:
                taken = AddressRange(hole.base, size)
                remainder = AddressRange(hole.base + size, hole.size - size)
                if remainder.size > 0:
                    self._free[i] = remainder
                else:
                    del self._free[i]
                return taken
        return None

    def release(self, rng: AddressRange) -> None:
        self._free.append(rng)
        self._free.sort(key=lambda r: r.base)
        merged: List[AddressRange] = []
        for hole in self._free:
            if merged and merged[-1].end == hole.base:
                merged[-1] = AddressRange(merged[-1].base, merged[-1].size + hole.size)
            else:
                merged.append(hole)
        self._free = merged


class GlobalAllocator:
    """Allocates page-aligned blocks across the Compute Node's domains."""

    def __init__(self, numa: NumaMap) -> None:
        self.numa = numa
        self._arenas: Dict[int, _DomainArena] = {
            d.domain_id: _DomainArena(d.window) for d in numa.domains
        }
        self._live: Dict[int, Allocation] = {}
        self.total_allocations = 0
        self.spill_count = 0  # allocations that missed their affinity domain

    # ------------------------------------------------------------------
    def allocate(self, size: int, affinity_domain: int) -> Allocation:
        """Place ``size`` bytes as close to ``affinity_domain`` as possible."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        rounded = _round_up_pages(size)
        for domain in self.numa.nearest_domains(affinity_domain):
            rng = self._arenas[domain.domain_id].allocate(rounded)
            if rng is not None:
                self.total_allocations += 1
                if domain.domain_id != affinity_domain:
                    self.spill_count += 1
                alloc = Allocation(rng, domain.domain_id, size)
                self._live[alloc.alloc_id] = alloc
                return alloc
        raise AllocationError(
            f"no domain can hold {rounded} bytes "
            f"(largest holes: {[a.largest_hole() for a in self._arenas.values()]})"
        )

    def allocate_striped(self, size: int, domains: List[int]) -> List[Allocation]:
        """Distribute ``size`` bytes round-robin across ``domains`` --
        replication/striping for bandwidth (one slice per domain)."""
        if not domains:
            raise ValueError("need at least one domain to stripe over")
        slice_size = _round_up_pages((size + len(domains) - 1) // len(domains))
        return [self.allocate(slice_size, d) for d in domains]

    def free(self, alloc: Allocation) -> None:
        if alloc.alloc_id not in self._live:
            raise AllocationError(f"allocation {alloc.alloc_id} is not live")
        del self._live[alloc.alloc_id]
        self._arenas[alloc.domain_id].release(alloc.range)

    # ------------------------------------------------------------------
    def live_allocations(self) -> List[Allocation]:
        return list(self._live.values())

    def free_bytes(self, domain_id: Optional[int] = None) -> int:
        if domain_id is not None:
            return self._arenas[domain_id].free_bytes()
        return sum(a.free_bytes() for a in self._arenas.values())

    def locality_fraction(self) -> float:
        """Fraction of all allocations so far that landed on their
        affinity domain (1.0 = perfect locality)."""
        if self.total_allocations == 0:
            return 1.0
        return 1.0 - self.spill_count / self.total_allocations
