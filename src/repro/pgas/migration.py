"""Page-home migration and replication policies.

UNIMEM "gives the user the option to move tasks and processes close to
data instead of moving data around" -- but when many remote accessors hit
one page, re-homing (or replicating read-only data) is the right call.
:class:`MigrationPolicy` watches the UNIMEM page registry's remote-access
records and re-homes pages whose remote traffic dominates.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.memory.address import PAGE_SHIFT, PAGE_SIZE
from repro.memory.unimem import UnimemSpace


@dataclass
class MigrationStats:
    pages_examined: int = 0
    pages_migrated: int = 0
    pages_replicated: int = 0
    migration_bytes: int = 0


class MigrationPolicy:
    """Threshold-based page re-homing.

    The policy counts per-(page, node) accesses reported through
    :meth:`record`; when a remote node's access share for a page exceeds
    ``migrate_threshold``, the page is re-homed to it.  Pages that are
    written are never replicated; read-only pages with many distinct
    readers are flagged for replication instead (replicas are cheaper
    than ping-ponging the home).
    """

    def __init__(
        self,
        space: UnimemSpace,
        migrate_threshold: float = 0.6,
        min_accesses: int = 16,
        replicate_reader_count: int = 3,
    ) -> None:
        if not 0.0 < migrate_threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if min_accesses < 1:
            raise ValueError("min_accesses must be >= 1")
        self.space = space
        self.migrate_threshold = migrate_threshold
        self.min_accesses = min_accesses
        self.replicate_reader_count = replicate_reader_count
        self.stats = MigrationStats()
        # page -> node -> access count; page -> written?
        self._counts: Dict[int, Counter] = defaultdict(Counter)
        self._written: Dict[int, bool] = defaultdict(bool)
        self.replicas: Dict[int, List[int]] = {}  # page -> replica nodes

    # ------------------------------------------------------------------
    def record(self, node: int, addr: int, size: int, is_write: bool) -> None:
        """Feed one access into the policy's statistics."""
        if size <= 0:
            raise ValueError("access size must be positive")
        first = addr >> PAGE_SHIFT
        last = (addr + size - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            self._counts[page][node] += 1
            if is_write:
                self._written[page] = True
                # writes invalidate read replicas
                self.replicas.pop(page, None)

    # ------------------------------------------------------------------
    def step(self) -> Tuple[int, int]:
        """Run one policy evaluation over all observed pages.

        Returns ``(migrated, replicated)`` counts for this step.
        """
        migrated = replicated = 0
        for page, counts in self._counts.items():
            self.stats.pages_examined += 1
            total = sum(counts.values())
            if total < self.min_accesses:
                continue
            home = self.space.registry.cacheable_home(
                page, self.space.map.worker_of(page << PAGE_SHIFT)
            )
            top_node, top_count = counts.most_common(1)[0]
            if top_node != home and top_count / total >= self.migrate_threshold:
                self.space.rehome_range(
                    # one page
                    _page_range(page),
                    top_node,
                )
                self.stats.pages_migrated += 1
                self.stats.migration_bytes += PAGE_SIZE
                migrated += 1
                counts.clear()  # restart statistics after a move
                continue
            if not self._written[page]:
                readers = [n for n, c in counts.items() if n != home and c > 0]
                if len(readers) >= self.replicate_reader_count:
                    existing = set(self.replicas.get(page, []))
                    new = sorted(set(readers) - existing)
                    if new:
                        self.replicas[page] = sorted(existing | set(new))
                        self.stats.pages_replicated += len(new)
                        replicated += len(new)
        return migrated, replicated

    def has_replica(self, page: int, node: int) -> bool:
        return node in self.replicas.get(page, [])


def _page_range(page: int):
    from repro.memory.address import AddressRange

    return AddressRange(page << PAGE_SHIFT, PAGE_SIZE)
