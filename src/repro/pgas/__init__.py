"""The PGAS layer: NUMA-aware global memory management.

ECOSCALE treats "the global memory in each compute node as a collection
of NUMA domains accessible via the UNIMEM interface" and explores
"topology-aware global memory allocators in these domains, to be used by
the OpenCL runtime for implicit data allocation, migration and
replication between workers" (Section 4.4).
"""

from repro.pgas.allocator import Allocation, AllocationError, GlobalAllocator
from repro.pgas.migration import MigrationPolicy, MigrationStats
from repro.pgas.numa import NumaDomain, NumaMap

__all__ = [
    "Allocation",
    "AllocationError",
    "GlobalAllocator",
    "MigrationPolicy",
    "MigrationStats",
    "NumaDomain",
    "NumaMap",
]
