"""ECOSCALE reproduction: reconfigurable computing + runtime for exascale.

A complete, simulation-backed implementation of the system described in
Mavroidis et al., "ECOSCALE: Reconfigurable Computing and Runtime System
for Future Exascale Systems", DATE 2016.  See README.md for the tour,
DESIGN.md for the system inventory, EXPERIMENTS.md for paper-vs-measured
results, and ``python -m repro info`` for the package map.
"""

__version__ = "1.0.0"
