"""Distributed breadth-first search: the irregular-communication workload.

Section 2: "the PGAS programming model is an attractive alternative for
designing applications with irregular communication patterns".  Graph
traversal is the canonical such application: per-level frontier
exchanges consist of many small, destination-dependent messages that a
bulk-synchronous MPI formulation must batch and a PGAS formulation can
issue as fine-grained remote stores.

The BFS itself runs for real (numpy CSR, validated against networkx in
the tests); :func:`frontier_exchange_plan` reports, per level, exactly
which (src_partition, dst_partition, vertex_count) messages cross
partitions -- the input to the CLAIM-IRREGULAR transport comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np


@dataclass(frozen=True)
class CsrGraph:
    """A compressed-sparse-row undirected graph."""

    indptr: np.ndarray
    indices: np.ndarray

    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices) // 2

    def neighbours(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])


def random_graph(n: int, avg_degree: float = 8.0, seed: int = 0) -> CsrGraph:
    """An Erdos-Renyi-style random graph in CSR form (deterministic)."""
    if n < 2 or avg_degree <= 0:
        raise ValueError("need n >= 2 and positive average degree")
    rng = np.random.default_rng(seed)
    m = int(n * avg_degree / 2)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    # symmetrize and dedupe
    a = np.concatenate([src, dst])
    b = np.concatenate([dst, src])
    order = np.lexsort((b, a))
    a, b = a[order], b[order]
    uniq = np.ones(len(a), dtype=bool)
    uniq[1:] = (a[1:] != a[:-1]) | (b[1:] != b[:-1])
    a, b = a[uniq], b[uniq]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, a + 1, 1)
    indptr = np.cumsum(indptr)
    return CsrGraph(indptr=indptr, indices=b.astype(np.int64))


def bfs_levels(graph: CsrGraph, source: int = 0) -> np.ndarray:
    """Level of every vertex from ``source`` (-1 = unreachable)."""
    if not 0 <= source < graph.num_vertices:
        raise ValueError(f"source {source} out of range")
    levels = np.full(graph.num_vertices, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        nxt: List[int] = []
        for v in frontier:
            for u in graph.neighbours(int(v)):
                if levels[u] < 0:
                    levels[u] = level
                    nxt.append(int(u))
        frontier = np.array(sorted(set(nxt)), dtype=np.int64)
    return levels


@dataclass(frozen=True)
class FrontierExchange:
    """One BFS level's cross-partition traffic."""

    level: int
    messages: Tuple[Tuple[int, int, int], ...]  # (src_part, dst_part, vertices)

    @property
    def total_vertices(self) -> int:
        return sum(c for _, _, c in self.messages)

    @property
    def message_count(self) -> int:
        return len(self.messages)

    def mean_message_vertices(self) -> float:
        if not self.messages:
            return 0.0
        return self.total_vertices / len(self.messages)


def frontier_exchange_plan(
    graph: CsrGraph, levels: np.ndarray, partitions: int
) -> List[FrontierExchange]:
    """Per-level cross-partition discovery messages (block partitioning).

    When a level-k vertex in partition i discovers a level-(k+1) vertex
    owned by partition j != i, one notification (src=i, dst=j) is due.
    These are exactly the small irregular messages the paper talks about.
    """
    if partitions < 1:
        raise ValueError("need at least one partition")
    n = graph.num_vertices
    owner = np.minimum((np.arange(n) * partitions) // n, partitions - 1)
    max_level = int(levels.max())
    plans: List[FrontierExchange] = []
    for level in range(max_level):
        counts: Dict[Tuple[int, int], int] = {}
        frontier = np.flatnonzero(levels == level)
        for v in frontier:
            for u in graph.neighbours(int(v)):
                if levels[u] == level + 1:
                    i, j = int(owner[v]), int(owner[u])
                    if i != j:
                        counts[(i, j)] = counts.get((i, j), 0) + 1
        plans.append(
            FrontierExchange(
                level=level + 1,
                messages=tuple(
                    (i, j, c) for (i, j), c in sorted(counts.items())
                ),
            )
        )
    return plans
