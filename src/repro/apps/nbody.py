"""All-pairs n-body (softened gravitational interaction)."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def nbody_step(
    positions: np.ndarray,
    velocities: np.ndarray,
    masses: np.ndarray,
    dt: float,
    softening: float = 1e-3,
    g: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """One leapfrog step of the all-pairs n-body problem.

    Returns updated (positions, velocities); inputs are not modified.
    """
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError(f"positions must be (n, 3), got {positions.shape}")
    if velocities.shape != positions.shape:
        raise ValueError("velocities must match positions shape")
    n = positions.shape[0]
    if masses.shape != (n,):
        raise ValueError(f"masses must be ({n},), got {masses.shape}")
    if dt <= 0 or softening <= 0:
        raise ValueError("dt and softening must be positive")

    delta = positions[None, :, :] - positions[:, None, :]        # (n, n, 3)
    dist2 = (delta**2).sum(axis=2) + softening**2
    inv_d3 = dist2 ** (-1.5)
    np.fill_diagonal(inv_d3, 0.0)
    accel = g * (delta * (masses[None, :, None] * inv_d3[:, :, None])).sum(axis=1)

    new_v = velocities + accel * dt
    new_p = positions + new_v * dt
    return new_p, new_v


def nbody_energy(
    positions: np.ndarray,
    velocities: np.ndarray,
    masses: np.ndarray,
    softening: float = 1e-3,
    g: float = 1.0,
) -> float:
    """Total (kinetic + potential) energy -- the conservation check."""
    kinetic = 0.5 * float((masses * (velocities**2).sum(axis=1)).sum())
    delta = positions[None, :, :] - positions[:, None, :]
    dist = np.sqrt((delta**2).sum(axis=2) + softening**2)
    inv = 1.0 / dist
    np.fill_diagonal(inv, 0.0)
    potential = -0.5 * g * float((masses[:, None] * masses[None, :] * inv).sum())
    return kinetic + potential


def plummer_sphere(n: int, seed: int = 0) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A reproducible cold Plummer-ish initial condition."""
    if n < 2:
        raise ValueError("need at least two bodies")
    rng = np.random.default_rng(seed)
    positions = rng.normal(scale=1.0, size=(n, 3))
    velocities = rng.normal(scale=0.05, size=(n, 3))
    masses = np.full(n, 1.0 / n)
    return positions, velocities, masses
