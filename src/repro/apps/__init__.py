"""HPC application workloads.

Real (numpy-backed) implementations of the computations ECOSCALE's use
cases revolve around, each paired with decomposition helpers so the same
workload can be partitioned hierarchically (Fig. 1) or flat:

- iterative Jacobi stencils (the canonical locality-rich HPC pattern),
- blocked dense matrix multiply,
- all-pairs n-body,
- Monte-Carlo option pricing (the Maxeler financial workload [18]),
- CART decision-tree classification (the Convey HC data-mining workload [17]),
- synthetic task DAGs with a tunable locality knob.
"""

from repro.apps.bfs import CsrGraph, bfs_levels, frontier_exchange_plan, random_graph
from repro.apps.cart import CartTree, make_classification
from repro.apps.mapping import (
    block_mapping,
    communication_bytes,
    cyclic_mapping,
    random_mapping,
)
from repro.apps.matmul import blocked_matmul, matmul_task_list
from repro.apps.montecarlo import european_call_mc, gbm_paths
from repro.apps.nbody import nbody_energy, nbody_step
from repro.apps.sorting import (
    SortExchange,
    choose_splitters,
    partition_data,
    plan_exchange,
    sample_sort,
)
from repro.apps.stencil import (
    StencilDecomposition,
    decompose_grid,
    halo_pairs,
    jacobi_reference,
    jacobi_step,
)
from repro.apps.taskgraph import Task, TaskGraph, make_layered_dag

__all__ = [
    "CartTree",
    "CsrGraph",
    "StencilDecomposition",
    "SortExchange",
    "Task",
    "TaskGraph",
    "block_mapping",
    "bfs_levels",
    "blocked_matmul",
    "communication_bytes",
    "cyclic_mapping",
    "decompose_grid",
    "european_call_mc",
    "frontier_exchange_plan",
    "gbm_paths",
    "halo_pairs",
    "jacobi_reference",
    "jacobi_step",
    "make_classification",
    "make_layered_dag",
    "matmul_task_list",
    "nbody_energy",
    "nbody_step",
    "partition_data",
    "plan_exchange",
    "random_graph",
    "random_mapping",
    "sample_sort",
    "choose_splitters",
]
