"""Monte-Carlo option pricing (geometric Brownian motion).

The financial workload of the paper's related work (Maxeler multi-level
Monte-Carlo [18]); compute-dense and embarrassingly parallel -- the ideal
UNILOGIC shared-accelerator client.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def gbm_paths(
    s0: float,
    mu: float,
    sigma: float,
    horizon: float,
    steps: int,
    paths: int,
    seed: int = 0,
) -> np.ndarray:
    """Simulate ``paths`` GBM price paths; returns (paths, steps+1)."""
    if s0 <= 0 or sigma < 0 or steps < 1 or paths < 1 or horizon <= 0:
        raise ValueError("invalid GBM parameters")
    rng = np.random.default_rng(seed)
    dt = horizon / steps
    shocks = rng.standard_normal((paths, steps))
    drift = (mu - 0.5 * sigma * sigma) * dt
    diffusion = sigma * math.sqrt(dt)
    log_paths = np.cumsum(drift + diffusion * shocks, axis=1)
    out = np.empty((paths, steps + 1))
    out[:, 0] = s0
    out[:, 1:] = s0 * np.exp(log_paths)
    return out


def european_call_mc(
    s0: float,
    strike: float,
    rate: float,
    sigma: float,
    horizon: float,
    steps: int = 64,
    paths: int = 10000,
    seed: int = 0,
) -> Tuple[float, float]:
    """(price, standard_error) of a European call by Monte-Carlo."""
    if strike <= 0:
        raise ValueError("strike must be positive")
    terminal = gbm_paths(s0, rate, sigma, horizon, steps, paths, seed)[:, -1]
    payoff = np.maximum(terminal - strike, 0.0) * math.exp(-rate * horizon)
    price = float(payoff.mean())
    stderr = float(payoff.std(ddof=1) / math.sqrt(paths))
    return price, stderr


def black_scholes_call(
    s0: float, strike: float, rate: float, sigma: float, horizon: float
) -> float:
    """Closed-form reference for validating the Monte-Carlo kernel."""
    if sigma <= 0 or horizon <= 0:
        raise ValueError("sigma and horizon must be positive")
    d1 = (math.log(s0 / strike) + (rate + 0.5 * sigma**2) * horizon) / (
        sigma * math.sqrt(horizon)
    )
    d2 = d1 - sigma * math.sqrt(horizon)

    def ncdf(x: float) -> float:
        return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))

    return s0 * ncdf(d1) - strike * math.exp(-rate * horizon) * ncdf(d2)
