"""2-D Jacobi stencil: the canonical halo-exchange HPC workload.

Provides both the *computation* (numpy 5-point Jacobi sweeps, used by the
examples to produce real numbers) and the *communication structure* (a
2-D block decomposition whose halo-exchange pairs feed the partitioning
experiments of Fig. 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np


def jacobi_step(grid: np.ndarray) -> np.ndarray:
    """One 5-point Jacobi sweep (Dirichlet boundary kept fixed)."""
    if grid.ndim != 2 or min(grid.shape) < 3:
        raise ValueError(f"need a 2-D grid of at least 3x3, got {grid.shape}")
    out = grid.copy()
    out[1:-1, 1:-1] = 0.25 * (
        grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
    )
    return out


def jacobi_reference(n: int, iterations: int, hot_edge: float = 100.0) -> np.ndarray:
    """A reproducible reference problem: square plate, one hot edge."""
    if n < 3 or iterations < 0:
        raise ValueError("need n >= 3 and iterations >= 0")
    grid = np.zeros((n, n), dtype=np.float64)
    grid[0, :] = hot_edge
    for _ in range(iterations):
        grid = jacobi_step(grid)
    return grid


@dataclass(frozen=True)
class StencilDecomposition:
    """A ``py x px`` block decomposition of an ``n x n`` grid."""

    n: int
    py: int
    px: int
    elem_bytes: int = 8

    def __post_init__(self) -> None:
        if self.py < 1 or self.px < 1 or self.n < max(self.py, self.px):
            raise ValueError(
                f"invalid decomposition {self.py}x{self.px} of an {self.n}-grid"
            )

    @property
    def num_subdomains(self) -> int:
        return self.py * self.px

    def subdomain_shape(self, index: int) -> Tuple[int, int]:
        """(rows, cols) of one subdomain (edge blocks absorb remainders)."""
        iy, ix = divmod(index, self.px)
        rows = self.n // self.py + (1 if iy < self.n % self.py else 0)
        cols = self.n // self.px + (1 if ix < self.n % self.px else 0)
        return rows, cols

    def coords(self, index: int) -> Tuple[int, int]:
        return divmod(index, self.px)

    def index(self, iy: int, ix: int) -> int:
        return iy * self.px + ix

    def halo_bytes(self, a: int, b: int) -> int:
        """Bytes exchanged per iteration between adjacent subdomains."""
        ay, ax = self.coords(a)
        by, bx = self.coords(b)
        if abs(ay - by) + abs(ax - bx) != 1:
            raise ValueError(f"subdomains {a} and {b} are not face neighbours")
        if ay == by:  # vertical edge: a column of rows crosses
            rows = self.subdomain_shape(a)[0]
            return rows * self.elem_bytes
        cols = self.subdomain_shape(a)[1]
        return cols * self.elem_bytes


def decompose_grid(n: int, parts: int, elem_bytes: int = 8) -> StencilDecomposition:
    """Factor ``parts`` into the squarest ``py x px`` block grid."""
    if parts < 1:
        raise ValueError("need at least one part")
    best = (1, parts)
    for py in range(1, int(math.isqrt(parts)) + 1):
        if parts % py == 0:
            best = (py, parts // py)
    return StencilDecomposition(n=n, py=best[0], px=best[1], elem_bytes=elem_bytes)


def halo_pairs(decomp: StencilDecomposition) -> List[Tuple[int, int, int]]:
    """All (a, b, bytes) halo-exchange pairs, each undirected pair once."""
    pairs = []
    for iy in range(decomp.py):
        for ix in range(decomp.px):
            a = decomp.index(iy, ix)
            if ix + 1 < decomp.px:
                b = decomp.index(iy, ix + 1)
                pairs.append((a, b, decomp.halo_bytes(a, b)))
            if iy + 1 < decomp.py:
                b = decomp.index(iy + 1, ix)
                pairs.append((a, b, decomp.halo_bytes(a, b)))
    return pairs
