"""CART decision-tree classification.

The big-data workload of the paper's related work: "the Convey HC-1
server has been used to accelerate data mining workloads using the CART
algorithm for decision tree classification" (HC-CART [17]).  A real,
deterministic Gini-impurity CART implementation; the split-search inner
loop is exactly what :func:`repro.hls.kernels.cart_split_kernel`
characterizes for hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    prediction: int = -1

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(labels: np.ndarray) -> float:
    if labels.size == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    p = counts / labels.size
    return 1.0 - float((p**2).sum())


def _best_split(x: np.ndarray, y: np.ndarray) -> Tuple[int, float, float]:
    """(feature, threshold, impurity_decrease); feature -1 when no split helps."""
    n, d = x.shape
    parent = _gini(y)
    best = (-1, 0.0, 0.0)
    for feature in range(d):
        order = np.argsort(x[:, feature], kind="stable")
        xs, ys = x[order, feature], y[order]
        for i in range(1, n):
            if xs[i] == xs[i - 1]:
                continue
            left, right = ys[:i], ys[i:]
            weighted = (i * _gini(left) + (n - i) * _gini(right)) / n
            gain = parent - weighted
            if gain > best[2]:
                best = (feature, float(0.5 * (xs[i] + xs[i - 1])), float(gain))
    return best


class CartTree:
    """A Gini CART classifier (fit/predict), depth- and size-limited."""

    def __init__(self, max_depth: int = 6, min_samples: int = 4) -> None:
        if max_depth < 1 or min_samples < 2:
            raise ValueError("need max_depth >= 1 and min_samples >= 2")
        self.max_depth = max_depth
        self.min_samples = min_samples
        self._root: Optional[_Node] = None
        self.node_count = 0
        self.splits_evaluated = 0

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "CartTree":
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise ValueError(f"bad training shapes {x.shape}, {y.shape}")
        if x.shape[0] < 1:
            raise ValueError("need at least one sample")
        self._root = self._build(x, y, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        self.node_count += 1
        majority = int(np.bincount(y).argmax())
        if (
            depth >= self.max_depth
            or y.size < self.min_samples
            or np.unique(y).size == 1
        ):
            return _Node(prediction=majority)
        feature, threshold, gain = _best_split(x, y)
        self.splits_evaluated += x.shape[0] * x.shape[1]
        if feature < 0 or gain <= 0:
            return _Node(prediction=majority)
        mask = x[:, feature] <= threshold
        if mask.all() or not mask.any():
            return _Node(prediction=majority)
        return _Node(
            feature=feature,
            threshold=threshold,
            left=self._build(x[mask], y[mask], depth + 1),
            right=self._build(x[~mask], y[~mask], depth + 1),
            prediction=majority,
        )

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("fit() must be called before predict()")
        if x.ndim != 2:
            raise ValueError(f"expected 2-D inputs, got shape {x.shape}")
        out = np.empty(x.shape[0], dtype=np.int64)
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(x) == y).mean())


def make_classification(
    samples: int = 500, features: int = 8, classes: int = 2, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """A separable-but-noisy synthetic classification problem."""
    if samples < classes or features < 1 or classes < 2:
        raise ValueError("invalid problem size")
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=3.0, size=(classes, features))
    y = rng.integers(0, classes, size=samples)
    x = centers[y] + rng.normal(scale=1.0, size=(samples, features))
    return x, y.astype(np.int64)
