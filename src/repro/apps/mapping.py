"""Mapping subdomains/tasks onto Workers, and costing the result.

The Fig. 1 experiment compares *hierarchical* placement (neighbouring
subdomains land on topologically nearby Workers -- block mapping onto the
tree's leaf order) against locality-oblivious placements (cyclic and
random) on the same machine.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.interconnect.message import Message, TransactionType
from repro.interconnect.network import Network


def block_mapping(num_items: int, workers: Sequence[Hashable]) -> Dict[int, Hashable]:
    """Contiguous blocks of items per worker (locality-preserving: with a
    row-major decomposition, neighbours stay on the same or adjacent
    workers -- the hierarchical partitioning of Fig. 1)."""
    if not workers:
        raise ValueError("need at least one worker")
    n_workers = len(workers)
    mapping = {}
    for item in range(num_items):
        mapping[item] = workers[item * n_workers // num_items]
    return mapping


def cyclic_mapping(num_items: int, workers: Sequence[Hashable]) -> Dict[int, Hashable]:
    """Round-robin: adjacent items always land on different workers (the
    locality-destroying strawman)."""
    if not workers:
        raise ValueError("need at least one worker")
    return {i: workers[i % len(workers)] for i in range(num_items)}


def random_mapping(
    num_items: int, workers: Sequence[Hashable], seed: int = 0
) -> Dict[int, Hashable]:
    """Uniform random placement (what a topology-oblivious scheduler does)."""
    if not workers:
        raise ValueError("need at least one worker")
    rng = random.Random(seed)
    return {i: rng.choice(list(workers)) for i in range(num_items)}


def communication_bytes(
    pairs: Sequence[Tuple[int, int, int]],
    mapping: Dict[int, Hashable],
    network: Network,
    rounds: int = 1,
) -> Dict[str, float]:
    """Cost ``rounds`` of the exchange ``pairs`` under ``mapping``.

    Returns the metrics the partitioning experiments report: total bytes
    that crossed links (hop-weighted), energy, the worst hop distance and
    the mean hop distance.  Item pairs mapped to the same worker cost
    nothing -- that is the whole point of locality-aware mapping.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    network.reset_traffic()
    total_latency = 0.0
    total_energy = 0.0
    hop_counts: List[int] = []
    for a, b, size in pairs:
        src, dst = mapping[a], mapping[b]
        if src == dst:
            hop_counts.append(0)
            continue
        hops = network.hop_distance(src, dst)
        hop_counts.append(hops)
        for _ in range(rounds):
            lat, energy = network.send_cost(
                Message(src, dst, size, TransactionType.STORE)
            )
            total_latency += lat
            total_energy += energy
    return {
        "link_bytes": float(network.total_link_bytes()),
        "energy_pj": total_energy,
        "sum_latency_ns": total_latency,
        "max_hops": float(max(hop_counts, default=0)),
        "mean_hops": (
            sum(hop_counts) / len(hop_counts) if hop_counts else 0.0
        ),
        "local_pairs": float(sum(1 for h in hop_counts if h == 0)),
    }
