"""Blocked dense matrix multiplication."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def blocked_matmul(a: np.ndarray, b: np.ndarray, block: int) -> np.ndarray:
    """C = A @ B computed tile by tile (the task decomposition the
    runtime distributes across Workers)."""
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
    if block < 1:
        raise ValueError("block size must be positive")
    m, k = a.shape
    _, n = b.shape
    c = np.zeros((m, n), dtype=np.result_type(a, b))
    for i0 in range(0, m, block):
        for j0 in range(0, n, block):
            for k0 in range(0, k, block):
                c[i0:i0 + block, j0:j0 + block] += (
                    a[i0:i0 + block, k0:k0 + block]
                    @ b[k0:k0 + block, j0:j0 + block]
                )
    return c


def matmul_task_list(m: int, n: int, k: int, block: int) -> List[Tuple[int, int, int]]:
    """The (i, j, k) tile-multiply tasks of a blocked matmul, in the order
    a runtime would enqueue them.  ``len(...)`` gives the task count the
    scheduler experiments use."""
    if min(m, n, k) < 1 or block < 1:
        raise ValueError("dimensions and block must be positive")
    tasks = []
    for i0 in range(0, m, block):
        for j0 in range(0, n, block):
            for k0 in range(0, k, block):
                tasks.append((i0 // block, j0 // block, k0 // block))
    return tasks
