"""Distributed sample sort: the hybrid MPI+PGAS sorting workload.

The paper's Section 2 cites Jose et al., "Designing Scalable Out-of-core
Sorting with Hybrid MPI+PGAS Programming Models" [5] as evidence for the
hybrid model.  This module implements the computation for real (numpy
sample sort across worker partitions) and exposes the communication
structure (splitter gather + all-to-all exchange volumes) so the
benches can price it under pure-MPI, pure-PGAS and hybrid transports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class SortExchange:
    """The communication plan of one sample-sort round."""

    counts: np.ndarray          # (p, p): counts[i, j] = elems i sends to j
    elem_bytes: int
    splitter_bytes: int         # gathered sample volume per worker

    @property
    def partitions(self) -> int:
        return self.counts.shape[0]

    def bytes_between(self, src: int, dst: int) -> int:
        return int(self.counts[src, dst]) * self.elem_bytes

    def total_exchange_bytes(self) -> int:
        off_diag = self.counts.sum() - np.trace(self.counts)
        return int(off_diag) * self.elem_bytes

    def imbalance(self) -> float:
        """max/mean received elements -- sample sort's quality metric."""
        received = self.counts.sum(axis=0)
        mean = received.mean()
        return float(received.max() / mean) if mean > 0 else 1.0


def partition_data(data: np.ndarray, partitions: int) -> List[np.ndarray]:
    """Split input across workers (the out-of-core shards)."""
    if partitions < 1:
        raise ValueError("need at least one partition")
    if data.ndim != 1:
        raise ValueError("sorting expects a 1-D array")
    return [np.array(chunk) for chunk in np.array_split(data, partitions)]


def choose_splitters(shards: List[np.ndarray], oversample: int = 8, seed: int = 0) -> np.ndarray:
    """Regular sampling: each shard contributes ``oversample`` samples;
    the p-1 global splitters are picked from the sorted sample set."""
    if oversample < 1:
        raise ValueError("oversample must be >= 1")
    p = len(shards)
    rng = np.random.default_rng(seed)
    samples = []
    for shard in shards:
        if shard.size == 0:
            continue
        k = min(oversample, shard.size)
        samples.append(rng.choice(shard, size=k, replace=False))
    if not samples:
        return np.array([])
    pool = np.sort(np.concatenate(samples))
    if p == 1:
        return np.array([])
    idx = [int(len(pool) * (i + 1) / p) for i in range(p - 1)]
    return pool[np.clip(idx, 0, len(pool) - 1)]


def plan_exchange(
    shards: List[np.ndarray], splitters: np.ndarray, oversample: int = 8
) -> SortExchange:
    """Count how many elements every shard sends to every bucket."""
    p = len(shards)
    counts = np.zeros((p, p), dtype=np.int64)
    for i, shard in enumerate(shards):
        buckets = np.searchsorted(splitters, shard, side="right")
        for j, c in zip(*np.unique(buckets, return_counts=True)):
            counts[i, j] = c
    elem_bytes = shards[0].dtype.itemsize if p else 8
    return SortExchange(
        counts=counts,
        elem_bytes=int(elem_bytes),
        splitter_bytes=oversample * int(elem_bytes),
    )


def sample_sort(
    data: np.ndarray, partitions: int, oversample: int = 8, seed: int = 0
) -> Tuple[np.ndarray, SortExchange]:
    """Full distributed sample sort; returns (sorted array, exchange plan).

    The result is *exactly* sorted (validated against ``np.sort`` in the
    tests); the exchange plan is what the transport benches price.
    """
    shards = partition_data(data, partitions)
    splitters = choose_splitters(shards, oversample, seed)
    exchange = plan_exchange(shards, splitters, oversample)

    # the actual alltoallv: route every element to its bucket
    buckets: List[List[np.ndarray]] = [[] for _ in range(partitions)]
    for shard in shards:
        assignment = np.searchsorted(splitters, shard, side="right")
        for j in range(partitions):
            buckets[j].append(shard[assignment == j])
    merged = [
        np.sort(np.concatenate(parts)) if parts else np.array([], dtype=data.dtype)
        for parts in buckets
    ]
    return np.concatenate(merged), exchange
