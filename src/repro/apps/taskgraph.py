"""Synthetic task DAGs with a tunable locality knob.

The runtime-system experiments need streams of tasks whose function mix,
working-set placement and dependence structure can be controlled.  A
:class:`TaskGraph` is a layered DAG: tasks in one layer may run in
parallel, edges only point to later layers.  The ``locality`` knob sets
the probability that a task's data lives on its preferred worker.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

_task_ids = itertools.count()


@dataclass
class Task:
    """One schedulable unit: a function applied to ``items`` work items."""

    function: str
    items: int
    data_worker: int            # where the working set lives (UNIMEM home)
    affinity_worker: int        # where the partitioning wants it to run
    layer: int = 0
    deps: Tuple[int, ...] = ()
    task_id: int = field(default_factory=lambda: next(_task_ids))
    input_bytes: int = 0
    output_bytes: int = 0
    # provenance tags (e.g. the serving requests batched into this task)
    # -- opaque to the runtime, echoed into its telemetry events so
    # engine-layer decisions stay attributable to originating requests
    tags: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if self.items < 1:
            raise ValueError(f"task needs at least one item, got {self.items}")


class TaskGraph:
    """A layered DAG of tasks."""

    def __init__(self, tasks: Sequence[Task]) -> None:
        self.tasks: List[Task] = list(tasks)
        self._by_id: Dict[int, Task] = {t.task_id: t for t in self.tasks}
        for t in self.tasks:
            for d in t.deps:
                dep = self._by_id.get(d)
                if dep is None:
                    raise ValueError(f"task {t.task_id} depends on unknown {d}")
                if dep.layer >= t.layer:
                    raise ValueError(
                        f"dependence {d} -> {t.task_id} violates layering"
                    )

    def __len__(self) -> int:
        return len(self.tasks)

    def task(self, task_id: int) -> Task:
        return self._by_id[task_id]

    def layers(self) -> List[List[Task]]:
        out: Dict[int, List[Task]] = {}
        for t in self.tasks:
            out.setdefault(t.layer, []).append(t)
        return [out[k] for k in sorted(out)]

    def width(self) -> int:
        return max(len(layer) for layer in self.layers())

    def critical_path_length(self) -> int:
        return len(self.layers())

    def functions(self) -> List[str]:
        return sorted({t.function for t in self.tasks})


def make_layered_dag(
    layers: int,
    width: int,
    num_workers: int,
    functions: Sequence[str] = ("stencil5", "saxpy", "montecarlo"),
    items_range: Tuple[int, int] = (512, 8192),
    locality: float = 0.9,
    fanin: int = 2,
    seed: int = 0,
) -> TaskGraph:
    """Generate a layered DAG.

    ``locality`` is the probability that ``data_worker == affinity_worker``
    (data was partitioned onto the worker that computes on it); the rest
    of the tasks have their data on a uniformly random other worker --
    the remote-access traffic the UNILOGIC/UNIMEM machinery must absorb.
    """
    if layers < 1 or width < 1 or num_workers < 1:
        raise ValueError("layers, width, workers must all be positive")
    if not 0.0 <= locality <= 1.0:
        raise ValueError(f"locality must be in [0, 1], got {locality}")
    if not functions:
        raise ValueError("need at least one function")
    rng = random.Random(seed)
    tasks: List[Task] = []
    prev_layer: List[Task] = []
    for layer in range(layers):
        current: List[Task] = []
        for slot in range(width):
            affinity = (slot * num_workers) // width
            if rng.random() < locality:
                data = affinity
            else:
                others = [w for w in range(num_workers) if w != affinity] or [affinity]
                data = rng.choice(others)
            deps: Tuple[int, ...] = ()
            if prev_layer:
                k = min(fanin, len(prev_layer))
                deps = tuple(t.task_id for t in rng.sample(prev_layer, k))
            items = rng.randint(*items_range)
            task = Task(
                function=rng.choice(list(functions)),
                items=items,
                data_worker=data,
                affinity_worker=affinity,
                layer=layer,
                deps=deps,
                input_bytes=items * 4,
                output_bytes=items * 4,
            )
            current.append(task)
        tasks.extend(current)
        prev_layer = current
    return TaskGraph(tasks)
