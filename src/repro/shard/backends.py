"""Execution backends: where partition runtimes live.

Two backends share one grant/window implementation
(:mod:`repro.shard.sync`), so they cannot diverge:

* ``inline`` -- every partition runtime lives in this process; the
  coordinator drives them sequentially.  With one partition this *is*
  the single-threaded engine the byte-identity contract references.
* ``process`` -- each partition runtime lives in a forked worker
  process speaking a tiny pickle-RPC over a pipe.  Forking inherits the
  warm interpreter (imports, compiled kernel suite), so bring-up inside
  workers starts hot.

``auto`` picks ``process`` only when it can actually help: more than
one partition, a ``fork`` start method, and more than one CPU.
"""

from __future__ import annotations

import os
import traceback
from typing import Any, Callable, Dict, List, Optional

from repro.shard.plan import PartitionPlan, ShardError
from repro.shard.sync import PartitionRuntime, SyncStats, run_conservative

#: a builder constructs one partition's runtime: (partition, plan, config)
Builder = Callable[[int, PartitionPlan, dict], PartitionRuntime]

BACKENDS = ("auto", "inline", "process")


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def resolve_backend(backend: str, partitions: int) -> str:
    """Resolve ``auto`` to a concrete backend for this host."""
    if backend not in BACKENDS:
        raise ShardError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if backend != "auto":
        return backend
    if partitions <= 1 or _cpu_count() <= 1:
        return "inline"
    try:
        import multiprocessing

        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - fork unavailable
        return "inline"
    return "process"


def resolve_builder(ref: str) -> Builder:
    """Resolve a ``"module:function"`` builder reference."""
    import importlib

    module_name, _, func_name = ref.partition(":")
    if not func_name:
        raise ShardError(f"builder ref {ref!r} is not 'module:function'")
    module = importlib.import_module(module_name)
    return getattr(module, func_name)


# ----------------------------------------------------------------------
# process backend: pickle-RPC worker
# ----------------------------------------------------------------------
def _shard_main(conn, builder_ref: str, partition: int, plan, config) -> None:
    """Worker-process entry: build the runtime, serve protocol calls."""
    try:
        runtime = resolve_builder(builder_ref)(partition, plan, config)
        conn.send(("ok", None))
    except BaseException:
        conn.send(("err", traceback.format_exc()))
        return
    while True:
        try:
            op, args = conn.recv()
        except EOFError:
            return
        if op == "exit":
            return
        try:
            if op == "eot":
                result: Any = runtime.eot()
            elif op == "advance":
                result = runtime.advance(*args)
            elif op == "deliver":
                result = runtime.deliver(*args)
            elif op == "fragments":
                result = runtime.fragments()
            elif op == "capture":
                result = runtime.capture()
            else:
                raise ShardError(f"unknown shard op {op!r}")
            conn.send(("ok", result))
        except BaseException:
            conn.send(("err", traceback.format_exc()))


class ProcessShard:
    """Coordinator-side proxy for one forked partition runtime."""

    def __init__(self, builder_ref: str, partition: int, plan, config) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        self.partition = partition
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_main,
            args=(child, builder_ref, partition, plan, config),
            name=f"shard{partition}",
        )
        self._proc.start()
        child.close()
        self._check()

    def _check(self) -> None:
        status, detail = self._conn.recv()
        if status != "ok":
            raise ShardError(f"partition {self.partition} failed:\n{detail}")
        self._last = detail

    def _rpc(self, op: str, *args) -> Any:
        self._conn.send((op, args))
        self._check()
        return self._last

    def eot(self):
        return self._rpc("eot")

    def advance(self, horizon):
        return self._rpc("advance", horizon)

    # split-phase advance: post the request to every worker first, then
    # collect replies in shard order -- this is where the process
    # backend's windows actually overlap across cores
    def advance_post(self, horizon) -> None:
        self._conn.send(("advance", (horizon,)))

    def advance_wait(self):
        self._check()
        return self._last

    def deliver(self, messages):
        return self._rpc("deliver", messages)

    def fragments(self):
        return self._rpc("fragments")

    def capture(self):
        return self._rpc("capture")

    def close(self) -> None:
        try:
            self._conn.send(("exit", ()))
        except (BrokenPipeError, OSError):
            pass
        self._proc.join(timeout=10)
        if self._proc.is_alive():  # pragma: no cover - hung worker
            self._proc.terminate()
        self._conn.close()


# ----------------------------------------------------------------------
# the coordinator-side shard set
# ----------------------------------------------------------------------
class ShardSet:
    """All partitions of one sharded run, behind one backend."""

    def __init__(
        self,
        plan: PartitionPlan,
        builder_ref: str,
        config: dict,
        backend: str = "auto",
    ) -> None:
        self.plan = plan
        self.backend = resolve_backend(backend, plan.partitions)
        self.shards: List[Any] = []
        if self.backend == "inline":
            builder = resolve_builder(builder_ref)
            for p in range(plan.partitions):
                self.shards.append(builder(p, plan, config))
        else:
            for p in range(plan.partitions):
                self.shards.append(ProcessShard(builder_ref, p, plan, config))

    def run(self, pause_at_ns: Optional[float] = None) -> SyncStats:
        return run_conservative(self.plan, self.shards, pause_at_ns=pause_at_ns)

    def fragments(self) -> Dict[int, dict]:
        merged: Dict[int, dict] = {}
        for shard in self.shards:
            merged.update(shard.fragments())
        return merged

    def capture(self) -> Dict[int, dict]:
        merged: Dict[int, dict] = {}
        for shard in self.shards:
            merged.update(shard.capture())
        return merged

    def close(self) -> None:
        for shard in self.shards:
            if hasattr(shard, "close"):
                shard.close()

    def __enter__(self) -> "ShardSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
