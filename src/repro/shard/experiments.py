"""Sharded experiment harnesses: jobs, serving, chaos, machine build.

Each experiment decomposes the machine by Compute Node: every node gets
its *own* :class:`~repro.sim.Simulator` plus the full mechanism stack
(engine, workers, fabric, memory, intra-node interconnect), and nodes
are grouped into partitions driven by the conservative window protocol
(:mod:`repro.shard.sync`).  All *policy* decisions that need a global
view -- serving brownout, the chaos fault plan, partition/plan shapes --
happen on the coordinator or on node 0 through bridge traffic, never by
reaching into another node's state.

The builders here are addressed as ``"repro.shard.experiments:<name>"``
by the process backend, so everything they receive (``config``) must be
plain picklable primitives.

Determinism notes:

* graph task ids are drawn from a node-scoped base
  (:func:`_task_id_base`) instead of the process-global counter, so the
  same node builds the same graph -- including retry-backoff jitter that
  is keyed by task id -- in any process and at any partition count;
* cross-node payloads fold in ascending node-id order everywhere;
* canonical reports carry the partition-invariant sync counters but
  never the partition count or backend.
"""

from __future__ import annotations

import itertools
import json
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

from repro.shard.bringup import TemplateCache, build_node, shared_template_cache
from repro.shard.merge import max_field, merged_report, sum_field
from repro.shard.plan import PartitionPlan, ShardError
from repro.shard.sync import NodeCell, PartitionRuntime

#: serving control-plane cadence: every node reports its load to node 0
#: once per epoch, and node 0's decision rides back on the bridge
SERVE_EPOCH_NS = 250_000.0

#: per-node offsets keeping seeds/ids disjoint across node islands
_GRAPH_SEED_STRIDE = 101
_SERVE_SEED_STRIDE = 1009
_TASK_ID_STRIDE = 1_000_000


@contextmanager
def _task_id_base(base: int):
    """Draw task ids from a deterministic node-scoped counter.

    ``make_layered_dag`` numbers tasks from a process-global counter, so
    the ids a node's graph gets would depend on what else the process
    built before it -- and retry backoff jitter is keyed by task id.
    Scoping the counter makes every node's graph identical in any
    process and at any partition count.  The global counter is restored
    afterwards, so legacy single-machine paths are untouched.
    """
    import repro.apps.taskgraph as taskgraph

    saved = taskgraph._task_ids
    taskgraph._task_ids = itertools.count(base)
    try:
        yield
    finally:
        taskgraph._task_ids = saved


def _machine_fragment(manager) -> Dict[str, Any]:
    """One node's MachineReport as a plain (picklable) dict."""
    return json.loads(manager.collect().json())


def _job_capture(manager, staged: bool, now: float) -> Dict[str, Any]:
    """Checkpoint state of one node's jobs (mirrors CheckpointManager).

    A task counts as completed when its work item's done signal fired
    without a failure -- plus anything a previous incarnation already
    carried in ``handle.completed``.
    """
    jobs = []
    for handle in manager.handles:
        done = set(handle.completed)
        index_of = {t.task_id: i for i, t in enumerate(handle.graph.tasks)}
        for item in handle.items:
            if item.done.triggered and not item.failed:
                idx = index_of.get(item.task.task_id)
                if idx is not None:
                    done.add(idx)
        jobs.append({"completed": sorted(done), "tasks": len(handle.graph)})
    return {"time_ns": now, "staged": bool(staged), "jobs": jobs}


# ======================================================================
# jobs: per-node multi-tenant mixes with cross-node stage-in
# ======================================================================
def build_jobs_partition(
    partition: int, plan: PartitionPlan, config: dict
) -> PartitionRuntime:
    """One partition of the sharded multi-tenant jobs experiment.

    Every node runs the full job mix of the preset (graph seeds offset
    per node).  Before a node may submit its jobs it stages its inputs
    in from its neighbour ``(node_id + 1) % num_nodes``: a FETCH at
    t=0, a DATA reply on delivery, submission when the DATA lands --
    deterministic cross-partition traffic on every run.
    """
    from repro.apps import make_layered_dag
    from repro.core.runtime import ExecutionEngine, JobManager
    from repro.presets import compiled_suite, job_preset, node_preset
    from repro.sim import Simulator

    mix = job_preset(config["preset"])
    registry, library = compiled_suite(max_variants=1)
    restore = config.get("restore") or {}
    runtime = PartitionRuntime(partition, plan)
    cache = shared_template_cache()
    for node_id in plan.nodes_in(partition):
        sim = Simulator()
        node = build_node(sim, node_preset(mix.node), node_id, cache)
        engine = ExecutionEngine(
            node, registry, library,
            use_daemon=True, daemon_period_ns=100_000.0,
        )
        manager = JobManager(engine)
        graphs = []
        with _task_id_base(node_id * _TASK_ID_STRIDE):
            for spec in mix.jobs:
                graphs.append(
                    make_layered_dag(
                        layers=spec.layers,
                        width=spec.width,
                        num_workers=len(node),
                        functions=("saxpy", "stencil5", "montecarlo"),
                        seed=spec.graph_seed
                        + config["seed"]
                        + node_id * _GRAPH_SEED_STRIDE,
                    )
                )

        cell = NodeCell(node_id, sim)
        state = {"staged_at": None}

        def submit(
            manager=manager, mix=mix, graphs=graphs, node_restore=None
        ) -> None:
            per_job = (node_restore or {}).get("jobs") or []
            for j, (spec, graph) in enumerate(zip(mix.jobs, graphs)):
                done = (
                    frozenset(per_job[j]["completed"])
                    if j < len(per_job)
                    else frozenset()
                )
                manager.submit_job(
                    graph,
                    policy=spec.policy,
                    priority=spec.priority,
                    dataflow=spec.dataflow,
                    completed=done,
                )

        node_restore = restore.get(str(node_id))
        if node_restore is not None and node_restore.get("staged"):
            # restored past the stage-in barrier: no fetch round, the
            # jobs resume at t=0 with their completed sets
            state["staged_at"] = 0.0
            submit(node_restore=node_restore)
        else:
            peer = (node_id + 1) % plan.num_nodes
            gate = cell.gate(0.0)

            def request_stage(
                cell=cell, gate=gate, peer=peer, node_id=node_id
            ) -> None:
                cell.bridge.send(
                    peer, "job-fetch", {"src": node_id}, plan.lookahead_ns
                )
                gate.next_send_ns = None

            sim.schedule_at(0.0, request_stage)

            def on_fetch(msg, cell=cell, node_id=node_id) -> None:
                cell.bridge.send(
                    msg.payload["src"],
                    "job-data",
                    {"src": node_id},
                    plan.lookahead_ns,
                )

            def on_data(
                msg, sim=sim, state=state, submit=submit,
                node_restore=node_restore,
            ) -> None:
                state["staged_at"] = sim.now
                submit(node_restore=node_restore)

            cell.on("job-fetch", on_fetch)
            cell.on("job-data", on_data)

        def fragment(manager=manager, state=state) -> Dict[str, Any]:
            return {
                "machine": _machine_fragment(manager),
                "stage": {"staged_at_ns": state["staged_at"]},
            }

        def capturer(manager=manager, state=state, sim=sim) -> Dict[str, Any]:
            return _job_capture(manager, state["staged_at"] is not None, sim.now)

        cell.fragment = fragment
        cell.capturer = capturer
        runtime.add_cell(cell)
    return runtime


def run_sharded_jobs(
    preset: str = "mini",
    seed: int = 0,
    num_nodes: int = 2,
    partitions: int = 1,
    backend: str = "auto",
    lookahead_ns: Optional[float] = None,
    restore: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Run the job mix on every node of a sharded machine; merged report."""
    from repro.presets import compiled_suite, job_preset
    from repro.shard.backends import ShardSet

    job_preset(preset)  # validate the name before any fork
    compiled_suite(max_variants=1)  # warm the HLS cache pre-fork
    plan = PartitionPlan.build(num_nodes, partitions, lookahead_ns)
    config: Dict[str, Any] = {"preset": preset, "seed": seed}
    if restore is not None:
        config["restore"] = restore
    with ShardSet(
        plan, "repro.shard.experiments:build_jobs_partition", config, backend
    ) as shards:
        stats = shards.run()
        fragments = shards.fragments()
    header = {
        "preset": preset,
        "seed": seed,
        "num_nodes": num_nodes,
        "lookahead_ns": plan.lookahead_ns,
        "restored": restore is not None,
        "makespan_ns": max_field(fragments, "machine", "makespan_ns"),
        "tasks": int(sum_field(fragments, "machine", "tasks")),
        "energy_pj": sum_field(fragments, "machine", "energy_pj"),
        "tasks_unrecovered": int(
            sum_field(fragments, "machine", "tasks_unrecovered")
        ),
    }
    return merged_report(
        "repro-shard-jobs/v1", header, fragments, sync=stats.to_dict()
    )


# ======================================================================
# serving: per-node gateways under a node-0 brownout control plane
# ======================================================================
def _node_scenario(scenario, node_id: int, num_nodes: int):
    """Split one serving scenario across ``num_nodes`` gateway nodes.

    Request counts split evenly (remainder to the lowest node ids);
    trace tenants split their offset list round-robin.  The tenant mix,
    rates and SLOs stay identical on every node.
    """
    from dataclasses import replace

    tenants = []
    for t in scenario.tenants:
        if t.arrival == "trace":
            offsets = t.trace_offsets_ns[node_id::num_nodes]
            tenants.append(
                replace(
                    t,
                    trace_offsets_ns=offsets,
                    requests=max(1, len(offsets)),
                )
            )
            continue
        if t.requests < num_nodes:
            raise ShardError(
                f"tenant {t.name!r} has {t.requests} requests, fewer than "
                f"{num_nodes} nodes -- nothing to shard"
            )
        share = t.requests // num_nodes + (
            1 if node_id < t.requests % num_nodes else 0
        )
        tenants.append(replace(t, requests=share))
    return replace(scenario, tenants=tuple(tenants))


def build_serving_partition(
    partition: int, plan: PartitionPlan, config: dict
) -> PartitionRuntime:
    """One partition of the sharded serving experiment.

    Each node runs a full gateway over its slice of the request stream.
    Once per epoch every node reports its instantaneous load to node 0;
    when the epoch's last report lands, node 0 aggregates in node order
    and broadcasts brownout enter/exit transitions (and the final stop)
    back over the bridge.
    """
    from repro.core.runtime import ExecutionEngine
    from repro.presets import compiled_suite, node_preset, serving_preset
    from repro.serving.brownout import BrownoutPolicy
    from repro.serving.gateway import ServingGateway
    from repro.sim import Simulator

    scenario = serving_preset(config["preset"])
    registry, library = compiled_suite(max_variants=2)
    runtime = PartitionRuntime(partition, plan)
    cache = shared_template_cache()
    for node_id in plan.nodes_in(partition):
        sim = Simulator()
        node = build_node(sim, node_preset(scenario.node), node_id, cache)
        engine = ExecutionEngine(node, registry, library, use_daemon=False)
        gateway = ServingGateway(
            engine,
            _node_scenario(scenario, node_id, plan.num_nodes),
            seed=config["seed"] + node_id * _SERVE_SEED_STRIDE,
            scenario_name=config["preset"],
            brownout=BrownoutPolicy(),
        )
        gateway.start()

        cell = NodeCell(node_id, sim)
        gate = cell.gate(SERVE_EPOCH_NS)
        state = {"stop": False, "epoch": 0}

        def epoch_tick(
            sim=sim, cell=cell, gate=gate, state=state,
            gateway=gateway, node_id=node_id,
        ) -> None:
            if state["stop"]:
                gate.next_send_ns = None
                return
            snap = gateway.load_snapshot()
            cell.bridge.send(
                0,
                "serve-load",
                {
                    "node": node_id,
                    "epoch": state["epoch"],
                    "outstanding": snap["outstanding"],
                    "queued": snap["queued"],
                    "drained": bool(snap["drained"]),
                },
                plan.lookahead_ns,
            )
            state["epoch"] += 1
            gate.next_send_ns = sim.now + SERVE_EPOCH_NS
            # reschedule through state: the bare name `epoch_tick` is
            # late-bound and would resolve to the *last* node's tick
            sim.schedule_at(gate.next_send_ns, state["tick"])

        state["tick"] = epoch_tick
        sim.schedule_at(SERVE_EPOCH_NS, epoch_tick)

        def on_brownout(msg, gateway=gateway) -> None:
            if msg.payload["active"]:
                gateway.enter_brownout("shard-coordinator")
            else:
                gateway.exit_brownout()

        def on_stop(msg, state=state) -> None:
            state["stop"] = True

        cell.on("serve-brownout", on_brownout)
        cell.on("serve-stop", on_stop)

        if node_id == 0:
            coord = {
                "active": False, "stopped": False,
                "decisions": 0, "entries": 0, "exits": 0,
                "bucket": {},
            }
            enter_at = config["brownout_enter"]
            exit_at = config["brownout_exit"]

            def broadcast(kind: str, payload: dict, cell=cell) -> None:
                for dst in range(plan.num_nodes):
                    cell.bridge.send(dst, kind, payload, plan.lookahead_ns)

            def on_load(msg, coord=coord, broadcast=broadcast) -> None:
                epoch = msg.payload["epoch"]
                bucket = coord["bucket"].setdefault(epoch, [])
                bucket.append(msg.payload)
                if len(bucket) < plan.num_nodes:
                    return
                loads = coord["bucket"].pop(epoch)
                loads.sort(key=lambda e: e["node"])  # node-order fold
                coord["decisions"] += 1
                if all(e["drained"] for e in loads):
                    if not coord["stopped"]:
                        coord["stopped"] = True
                        broadcast("serve-stop", {"epoch": epoch})
                    return
                total = sum(e["outstanding"] + e["queued"] for e in loads)
                if not coord["active"] and total > enter_at:
                    coord["active"] = True
                    coord["entries"] += 1
                    broadcast(
                        "serve-brownout", {"active": True, "epoch": epoch}
                    )
                elif coord["active"] and total < exit_at:
                    coord["active"] = False
                    coord["exits"] += 1
                    broadcast(
                        "serve-brownout", {"active": False, "epoch": epoch}
                    )

            cell.on("serve-load", on_load)
            coordinator = coord
        else:
            coordinator = None

        def fragment(
            gateway=gateway, state=state, coordinator=coordinator
        ) -> Dict[str, Any]:
            out = {
                "serving": gateway.report().to_dict(),
                "control": {"epochs_sent": state["epoch"]},
            }
            if coordinator is not None:
                out["control"]["decisions"] = coordinator["decisions"]
                out["control"]["brownout_entries"] = coordinator["entries"]
                out["control"]["brownout_exits"] = coordinator["exits"]
            return out

        cell.fragment = fragment
        runtime.add_cell(cell)
    return runtime


def run_sharded_serving(
    preset: str = "steady",
    seed: int = 0,
    num_nodes: int = 2,
    partitions: int = 1,
    backend: str = "auto",
    lookahead_ns: Optional[float] = None,
    brownout_enter: Optional[int] = None,
    brownout_exit: Optional[int] = None,
) -> Dict[str, Any]:
    """Serve one preset across ``num_nodes`` gateway nodes; merged report."""
    from repro.presets import compiled_suite, serving_preset
    from repro.shard.backends import ShardSet

    serving_preset(preset)
    compiled_suite(max_variants=2)
    plan = PartitionPlan.build(num_nodes, partitions, lookahead_ns)
    config = {
        "preset": preset,
        "seed": seed,
        # default thresholds scale with the node count so the decision
        # is about per-node pressure, not machine size
        "brownout_enter": (
            brownout_enter if brownout_enter is not None else 40 * num_nodes
        ),
        "brownout_exit": (
            brownout_exit if brownout_exit is not None else 8 * num_nodes
        ),
    }
    with ShardSet(
        plan, "repro.shard.experiments:build_serving_partition", config, backend
    ) as shards:
        stats = shards.run()
        fragments = shards.fragments()
    header = {
        "preset": preset,
        "seed": seed,
        "num_nodes": num_nodes,
        "lookahead_ns": plan.lookahead_ns,
        "horizon_ns": max_field(fragments, "serving", "horizon_ns"),
        "offered": int(sum_field(fragments, "serving", "offered")),
        "admitted": int(sum_field(fragments, "serving", "admitted")),
        "shed": int(sum_field(fragments, "serving", "shed")),
        "completed": int(sum_field(fragments, "serving", "completed")),
        "unrecovered": int(sum_field(fragments, "serving", "unrecovered")),
        "batches": int(sum_field(fragments, "serving", "batches")),
    }
    return merged_report(
        "repro-shard-serving/v1", header, fragments, sync=stats.to_dict()
    )


# ======================================================================
# chaos: per-node workloads under a node-0 fault commander
# ======================================================================
def build_chaos_partition(
    partition: int, plan: PartitionPlan, config: dict
) -> PartitionRuntime:
    """One partition of the sharded chaos experiment.

    Phase A (bring-up): each node runs its workload fault-free on a
    throwaway machine to pin down the baseline makespan and workload
    signature.  Phase B (the shard run): the same workload starts at
    t=0 with the self-healing runtime armed; every node announces its
    baseline to node 0, which derives the seeded global fault plan and
    sends each KILL so it is *delivered* exactly at its planned time.
    """
    from repro.apps import make_layered_dag
    from repro.chaos.controller import seeded_node_plan
    from repro.chaos.experiment import CHAOS_PRESETS, graph_signature
    from repro.core.runtime import (
        ExecutionEngine,
        FaultTolerancePolicy,
        JobManager,
    )
    from repro.presets import compiled_suite, node_preset
    from repro.sim import Simulator

    preset = CHAOS_PRESETS[config["preset"]]
    registry, library = compiled_suite(max_variants=1)
    runtime = PartitionRuntime(partition, plan)
    cache = shared_template_cache()
    for node_id in plan.nodes_in(partition):
        graph_seed = (
            preset.graph_seed + config["seed"] + node_id * _GRAPH_SEED_STRIDE
        )

        # ---- phase A: fault-free baseline on a throwaway machine ------
        scratch = Simulator()
        scratch_node = build_node(
            scratch, node_preset(preset.node), node_id, cache
        )
        base_engine = ExecutionEngine(
            scratch_node, registry, library,
            use_daemon=True, daemon_period_ns=100_000.0,
        )
        with _task_id_base(node_id * _TASK_ID_STRIDE):
            base_graph = make_layered_dag(
                layers=preset.layers, width=preset.width,
                num_workers=len(scratch_node),
                functions=("saxpy", "stencil5", "montecarlo"),
                seed=graph_seed,
            )
        baseline = base_engine.run_graph(base_graph)

        # ---- phase B: armed runtime, workload from t=0 ----------------
        sim = Simulator()
        node = build_node(sim, node_preset(preset.node), node_id, cache)
        engine = ExecutionEngine(
            node, registry, library,
            use_daemon=True, daemon_period_ns=100_000.0,
            fault_tolerance=FaultTolerancePolicy(
                heartbeat_period_ns=preset.heartbeat_period_ns,
                max_attempts=preset.max_attempts,
            ),
        )
        manager = JobManager(engine, fair_share=False)
        with _task_id_base(node_id * _TASK_ID_STRIDE + _TASK_ID_STRIDE // 2):
            graph = make_layered_dag(
                layers=preset.layers, width=preset.width,
                num_workers=len(node),
                functions=("saxpy", "stencil5", "montecarlo"),
                seed=graph_seed,
            )
        manager.submit_job(graph)

        cell = NodeCell(node_id, sim)
        gate = cell.gate(0.0)
        state: Dict[str, Any] = {"injected": []}

        def announce(
            cell=cell, gate=gate, node_id=node_id,
            baseline=baseline, node=node,
        ) -> None:
            cell.bridge.send(
                0,
                "chaos-ready",
                {
                    "node": node_id,
                    "makespan_ns": baseline.makespan_ns,
                    "workers": len(node),
                },
                plan.lookahead_ns,
            )
            gate.next_send_ns = None

        sim.schedule_at(0.0, announce)

        def on_kill(msg, sim=sim, engine=engine, state=state) -> None:
            p = msg.payload
            transient = p["downtime_ns"] is not None
            engine.crash_worker(p["worker"], permanent=not transient)
            state["injected"].append(
                {
                    "worker": p["worker"],
                    "at_ns": sim.now,
                    "downtime_ns": p["downtime_ns"],
                    "kind": "transient" if transient else "crash-stop",
                }
            )
            if transient:
                sim.schedule_at(
                    sim.now + p["downtime_ns"],
                    engine.recover_worker,
                    p["worker"],
                )

        cell.on("chaos-kill", on_kill)

        if node_id == 0:
            ready: Dict[int, dict] = {}

            def on_ready(
                msg, ready=ready, cell=cell, sim=sim, preset=preset,
                seed=config["seed"],
            ) -> None:
                ready[msg.payload["node"]] = msg.payload
                if len(ready) < plan.num_nodes:
                    return
                now = sim.now
                for nid in sorted(ready):
                    info = ready[nid]
                    faults = seeded_node_plan(
                        seed,
                        nid,
                        info["workers"],
                        info["makespan_ns"],
                        window_fraction=preset.window_fraction,
                        crashes=preset.worker_crashes,
                        transient_fraction=preset.transient_fraction,
                        downtime_ns=preset.worker_downtime_ns,
                    )
                    for f in faults:
                        at = max(f["at_ns"], now + plan.lookahead_ns)
                        cell.bridge.send(
                            nid,
                            "chaos-kill",
                            {
                                "worker": f["worker"],
                                "at_ns": at,
                                "downtime_ns": f["downtime_ns"],
                            },
                            at - now,
                        )

            cell.on("chaos-ready", on_ready)

        def fragment(
            manager=manager, baseline=baseline, state=state,
            base_graph=base_graph, graph=graph,
        ) -> Dict[str, Any]:
            chaos = _machine_fragment(manager)
            match = graph_signature(base_graph) == graph_signature(graph)
            return {
                "baseline": {
                    "makespan_ns": baseline.makespan_ns,
                    "tasks": baseline.tasks,
                },
                "chaos": chaos,
                "faults": state["injected"],
                "workload_match": match,
                "integrity_ok": (
                    match
                    and chaos["tasks"] == baseline.tasks
                    and chaos["tasks_unrecovered"] == 0
                ),
            }

        cell.fragment = fragment
        runtime.add_cell(cell)
    return runtime


def run_sharded_chaos(
    preset: str = "mini",
    seed: int = 0,
    num_nodes: int = 2,
    partitions: int = 1,
    backend: str = "auto",
    lookahead_ns: Optional[float] = None,
) -> Dict[str, Any]:
    """Chaos-test every node of a sharded machine; merged verdict report."""
    from repro.chaos.experiment import CHAOS_PRESETS
    from repro.presets import compiled_suite
    from repro.shard.backends import ShardSet

    if preset not in CHAOS_PRESETS:
        known = ", ".join(sorted(CHAOS_PRESETS))
        raise KeyError(
            f"unknown chaos preset {preset!r}; choose from: {known}"
        )
    compiled_suite(max_variants=1)
    plan = PartitionPlan.build(num_nodes, partitions, lookahead_ns)
    config = {"preset": preset, "seed": seed}
    with ShardSet(
        plan, "repro.shard.experiments:build_chaos_partition", config, backend
    ) as shards:
        stats = shards.run()
        fragments = shards.fragments()
    order = sorted(fragments)
    header = {
        "preset": preset,
        "seed": seed,
        "num_nodes": num_nodes,
        "lookahead_ns": plan.lookahead_ns,
        "integrity_ok": all(fragments[n]["integrity_ok"] for n in order),
        "faults_injected": int(
            sum(len(fragments[n]["faults"]) for n in order)
        ),
        "baseline_makespan_ns": max_field(
            fragments, "baseline", "makespan_ns"
        ),
        "chaos_makespan_ns": max_field(fragments, "chaos", "makespan_ns"),
        "tasks_retried": int(sum_field(fragments, "chaos", "tasks_retried")),
        "tasks_unrecovered": int(
            sum_field(fragments, "chaos", "tasks_unrecovered")
        ),
    }
    return merged_report(
        "repro-shard-chaos/v1", header, fragments, sync=stats.to_dict()
    )


# ======================================================================
# machine build: the bench's sharded exascale construction sweep
# ======================================================================
def build_build_partition(
    partition: int, plan: PartitionPlan, config: dict
) -> PartitionRuntime:
    """One partition of the sharded machine build: node bring-up only."""
    from repro.core import ComputeNodeParams
    from repro.sim import Simulator

    params = ComputeNodeParams(
        num_workers=config["workers_per_node"],
        intra_fanout=config["intra_fanout"],
    )
    runtime = PartitionRuntime(partition, plan)
    cache = shared_template_cache()
    for node_id in plan.nodes_in(partition):
        sim = Simulator()
        node = build_node(sim, params, node_id, cache)
        template = cache.get(params)
        cell = NodeCell(node_id, sim)

        def fragment(node=node, template=template) -> Dict[str, Any]:
            return {
                "workers": len(node),
                "intra_diameter": template.intra_diameter,
            }

        cell.fragment = fragment
        runtime.add_cell(cell)
    return runtime


def run_sharded_build(
    num_nodes: int,
    workers_per_node: int = 4,
    intra_fanout: Optional[int] = None,
    inter_node_fanouts: Optional[List[int]] = None,
    partitions: int = 1,
    backend: str = "auto",
    payload_bytes: int = 4096,
) -> Dict[str, Any]:
    """Build a sharded machine and measure its hierarchy metrics.

    The per-node mechanism stacks are built inside the partitions; the
    coordinator only builds the small inter-node tree and the world
    communicator for the allreduce -- exactly the structures
    :class:`~repro.core.machine.Machine` builds, so ``total_workers``,
    ``max_hop_distance`` and the allreduce numbers match the monolithic
    build at any partition count.
    """
    from repro.interconnect.topology import build_tree, level_params
    from repro.mpi.comm import Communicator
    from repro.shard.backends import ShardSet
    from repro.sim import Simulator

    plan = PartitionPlan.build(num_nodes, min(partitions, num_nodes))
    config = {
        "workers_per_node": workers_per_node,
        "intra_fanout": intra_fanout,
    }
    with ShardSet(
        plan, "repro.shard.experiments:build_build_partition", config, backend
    ) as shards:
        fragments = shards.fragments()

    fanouts = list(inter_node_fanouts or [num_nodes])
    depth = len(fanouts)
    # mirror Machine: inter-node levels sit one level above the intra tree
    params_per_level = [level_params(depth - 1 - d + 1) for d in range(depth)]
    sim = Simulator()
    inter_network, endpoints = build_tree(sim, fanouts, params_per_level)
    world = Communicator(inter_network, endpoints, name="world")
    # the allreduce touches most leaf pairs; the inter tree has exactly
    # one path per pair, so the LCA index resolves the same routes a
    # per-pair graph search would find
    inter_network.index_tree()
    result = world.allreduce(payload_bytes)

    intra = int(max_field(fragments, "intra_diameter"))
    if num_nodes == 1:
        max_hop = intra
    else:
        max_hop = intra + inter_network.diameter_hops(endpoints)
    return {
        "num_nodes": num_nodes,
        "total_workers": int(sum_field(fragments, "workers")),
        "max_hop_distance": max_hop,
        "allreduce": {
            "latency_ns": result.latency_ns,
            "rounds": result.rounds,
            "bytes_moved": result.bytes_moved,
        },
    }
