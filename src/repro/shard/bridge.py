"""The cross-partition message bridge.

Every inter-node interaction of a sharded run -- MPI-style transfers,
remote PGAS stage-in, chaos kill commands, serving control-plane epochs
-- travels as a :class:`BridgeMessage`.  Messages are plain picklable
records (the process backend ships them over pipes), and their total
order is ``(deliver_ns, src_node, seq)``: simultaneous cross-partition
deliveries tie-break by source node and then by the per-source send
sequence, which is exactly the deterministic-merge order the canonical
reports rely on.

The bridge is *latency-validating*: a send below the plan's lookahead
would let a message arrive inside the window that produced it, breaking
conservative synchronization, so it is rejected loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from repro.shard.plan import ShardError


@dataclass(frozen=True)
class BridgeMessage:
    """One cross-node message (picklable primitives only)."""

    deliver_ns: float
    src_node: int
    seq: int              # per-source send sequence (deterministic)
    dst_node: int
    kind: str
    payload: Tuple        # primitives / nested tuples only

    @property
    def order_key(self) -> Tuple[float, int, int]:
        return (self.deliver_ns, self.src_node, self.seq)


class NodeBridge:
    """One node's send side of the bridge.

    ``send`` stamps the per-source sequence number and validates the
    latency against the lookahead; the partition runtime drains the
    outbox at each window boundary and the coordinator routes the sorted
    batch to destination partitions.
    """

    def __init__(self, node_id: int, sim, lookahead_ns: float) -> None:
        self.node_id = node_id
        self.sim = sim
        self.lookahead_ns = lookahead_ns
        self._seq = 0
        self.outbox: List[BridgeMessage] = []
        self.sent = 0
        self.received = 0

    def send(
        self, dst_node: int, kind: str, payload: Tuple, latency_ns: float
    ) -> BridgeMessage:
        if latency_ns < self.lookahead_ns:
            raise ShardError(
                f"cross-partition latency {latency_ns} ns below lookahead "
                f"{self.lookahead_ns} ns (node {self.node_id} -> {dst_node})"
            )
        msg = BridgeMessage(
            deliver_ns=self.sim.now + latency_ns,
            src_node=self.node_id,
            seq=self._seq,
            dst_node=dst_node,
            kind=kind,
            payload=payload,
        )
        self._seq += 1
        self.sent += 1
        self.outbox.append(msg)
        return msg

    def drain(self) -> List[BridgeMessage]:
        out, self.outbox = self.outbox, []
        return out


def sort_messages(messages: List[BridgeMessage]) -> List[BridgeMessage]:
    """Canonical delivery order: (deliver_ns, src_node, seq)."""
    return sorted(messages, key=lambda m: m.order_key)
