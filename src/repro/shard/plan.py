"""Partitioning plans for the sharded simulation engine.

The machine is partitioned **by Compute Node** -- the paper's own
PGAS-island boundary: everything inside a node (Workers, fabric, memory,
the intra-node interconnect) is simulated by that node's own event loop,
and only inter-node traffic (MPI bridge, remote PGAS access, chaos
commands, serving control-plane epochs) crosses partitions.

A :class:`PartitionPlan` is deliberately *not* part of any experiment's
canonical output: the node, not the partition, is the unit of
simulation, and the partition count only chooses how node simulators are
grouped into execution containers.  Canonical reports therefore stay
byte-identical at any partition count.

The conservative-synchronization lookahead defaults to the inter-node
link latency of the machine hierarchy (``level_params(1)``) -- no
cross-node message can arrive sooner than one inter-node hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


class ShardError(RuntimeError):
    """Raised for invalid shard plans or synchronization-protocol bugs."""


def default_lookahead_ns() -> float:
    """Lookahead = the uncontended inter-node link latency (level 1)."""
    from repro.interconnect.topology import level_params

    return level_params(1).latency_ns


@dataclass(frozen=True)
class PartitionPlan:
    """How ``num_nodes`` Compute Nodes map onto ``partitions`` containers.

    Nodes are assigned in contiguous balanced blocks, so partition
    boundaries follow the machine hierarchy (neighbouring nodes share a
    partition first).
    """

    num_nodes: int
    partitions: int
    lookahead_ns: float

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ShardError("a plan needs at least one Compute Node")
        if self.partitions < 1:
            raise ShardError("a plan needs at least one partition")
        if self.partitions > self.num_nodes:
            raise ShardError(
                f"cannot split {self.num_nodes} node(s) into "
                f"{self.partitions} partitions"
            )
        if self.lookahead_ns <= 0:
            raise ShardError(
                "conservative synchronization needs a strictly positive "
                f"lookahead, got {self.lookahead_ns} ns (zero-latency "
                "inter-node links would serialize every event)"
            )

    @classmethod
    def build(
        cls,
        num_nodes: int,
        partitions: int,
        lookahead_ns: float = None,
    ) -> "PartitionPlan":
        if lookahead_ns is None:
            lookahead_ns = default_lookahead_ns()
        return cls(num_nodes=num_nodes, partitions=partitions,
                   lookahead_ns=lookahead_ns)

    def partition_of(self, node_id: int) -> int:
        """The partition holding ``node_id`` (contiguous balanced blocks)."""
        if not 0 <= node_id < self.num_nodes:
            raise ShardError(f"node {node_id} outside plan of {self.num_nodes}")
        return node_id * self.partitions // self.num_nodes

    def nodes_in(self, partition: int) -> Tuple[int, ...]:
        """The node ids grouped into ``partition``, ascending."""
        if not 0 <= partition < self.partitions:
            raise ShardError(f"partition {partition} outside plan")
        return tuple(
            n for n in range(self.num_nodes) if self.partition_of(n) == partition
        )

    def blocks(self) -> List[Tuple[int, ...]]:
        """Every partition's node block, in partition order."""
        return [self.nodes_in(p) for p in range(self.partitions)]
