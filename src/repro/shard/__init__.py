"""Sharded simulation engine: Compute-Node partitions under conservative sync.

The machine is decomposed by Compute Node -- every node owns a private
:class:`~repro.sim.Simulator` plus its full mechanism stack -- and nodes
are grouped into partitions that advance in lockstep lookahead windows
(:mod:`repro.shard.sync`).  Partitions run inline or in forked worker
processes (:mod:`repro.shard.backends`); policy stays on the coordinator
or node 0 and travels over the bridge.  Canonical merged reports
(:mod:`repro.shard.merge`) are byte-identical at any partition count on
any backend.
"""

from repro.shard.backends import BACKENDS, ShardSet, resolve_backend
from repro.shard.bridge import BridgeMessage, NodeBridge, sort_messages
from repro.shard.bringup import NodeTemplate, TemplateCache, build_node
from repro.shard.checkpoint import (
    capture_sharded_jobs,
    manifest_json,
    restore_sharded_jobs,
)
from repro.shard.experiments import (
    run_sharded_build,
    run_sharded_chaos,
    run_sharded_jobs,
    run_sharded_serving,
)
from repro.shard.merge import merged_report, report_json
from repro.shard.plan import PartitionPlan, ShardError, default_lookahead_ns
from repro.shard.sync import (
    NodeCell,
    PartitionRuntime,
    SendGate,
    SyncStats,
    run_conservative,
)

__all__ = [
    "BACKENDS",
    "BridgeMessage",
    "NodeBridge",
    "NodeCell",
    "NodeTemplate",
    "PartitionPlan",
    "PartitionRuntime",
    "SendGate",
    "ShardError",
    "ShardSet",
    "SyncStats",
    "TemplateCache",
    "build_node",
    "capture_sharded_jobs",
    "default_lookahead_ns",
    "manifest_json",
    "merged_report",
    "report_json",
    "resolve_backend",
    "restore_sharded_jobs",
    "run_conservative",
    "run_sharded_build",
    "run_sharded_chaos",
    "run_sharded_jobs",
    "run_sharded_serving",
    "sort_messages",
]
