"""Checkpoint/restore for sharded runs.

A sharded checkpoint pauses the conservative window loop at a time
boundary (everything strictly below ``pause_at_ns`` fired, nothing at or
above did), then captures each node's job progress.  Because the window
schedule is partition-invariant, the manifest is byte-identical whether
it was taken at 1 partition or 8 -- which is what makes cross-shape
restore (capture at 4 partitions, restore at 1, or vice versa) safe: the
manifest has no partition axis at all, only nodes.

Restore replays the manifest into a fresh sharded run: nodes that were
past their stage-in barrier resubmit their jobs at t=0 with the captured
completed-task sets; nodes that were not staged yet start from scratch.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.shard.plan import PartitionPlan, ShardError

SCHEMA = "repro-shard-ckpt/v1"


def capture_sharded_jobs(
    pause_at_ns: float,
    preset: str = "mini",
    seed: int = 0,
    num_nodes: int = 2,
    partitions: int = 1,
    backend: str = "auto",
    lookahead_ns: Optional[float] = None,
) -> Dict[str, Any]:
    """Run sharded jobs up to ``pause_at_ns`` and snapshot every node."""
    from repro.presets import compiled_suite, job_preset
    from repro.shard.backends import ShardSet

    if pause_at_ns <= 0:
        raise ShardError(f"pause_at_ns must be positive, got {pause_at_ns}")
    job_preset(preset)
    compiled_suite(max_variants=1)
    plan = PartitionPlan.build(num_nodes, partitions, lookahead_ns)
    config = {"preset": preset, "seed": seed}
    with ShardSet(
        plan, "repro.shard.experiments:build_jobs_partition", config, backend
    ) as shards:
        shards.run(pause_at_ns=pause_at_ns)
        captured = shards.capture()
    return {
        "schema": SCHEMA,
        "kind": "jobs",
        "preset": preset,
        "seed": seed,
        "num_nodes": num_nodes,
        "lookahead_ns": plan.lookahead_ns,
        "pause_at_ns": pause_at_ns,
        "nodes": {str(nid): captured[nid] for nid in sorted(captured)},
    }


def restore_sharded_jobs(
    manifest: Dict[str, Any],
    partitions: int = 1,
    backend: str = "auto",
) -> Dict[str, Any]:
    """Resume a captured sharded-jobs run at any partition count."""
    from repro.shard.experiments import run_sharded_jobs

    if manifest.get("schema") != SCHEMA:
        raise ShardError(
            f"not a shard checkpoint manifest: schema={manifest.get('schema')!r}"
        )
    if manifest.get("kind") != "jobs":
        raise ShardError(f"unsupported checkpoint kind {manifest.get('kind')!r}")
    return run_sharded_jobs(
        preset=manifest["preset"],
        seed=manifest["seed"],
        num_nodes=manifest["num_nodes"],
        partitions=partitions,
        backend=backend,
        lookahead_ns=manifest["lookahead_ns"],
        restore=manifest["nodes"],
    )


def manifest_json(manifest: Dict[str, Any], indent: Optional[int] = None) -> str:
    """Canonical serialized manifest (sorted keys, trailing newline)."""
    return json.dumps(manifest, indent=indent, sort_keys=True) + "\n"
