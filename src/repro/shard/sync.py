"""Conservative window synchronization across partitions.

The coordinator advances every partition in lockstep windows:

1. each partition reports its earliest pending event time and its
   earliest possible *send* time (explicit send gates registered by the
   experiment, plus any not-yet-delivered inbound message that a handler
   could answer),
2. the safe horizon is ``min(earliest send) + lookahead`` -- no
   cross-node message can arrive before it,
3. each partition fires every event strictly below the horizon
   (``Simulator.run_window``), collecting outgoing bridge messages,
4. the coordinator sorts the window's messages by the canonical
   ``(deliver_ns, src_node, seq)`` key and hands each partition its
   inbound slice, which is scheduled *before* any local event at the
   same timestamp exists -- the deterministic tie-break.

Because the earliest-send minimum is global, the window schedule -- and
therefore every node simulator's event/seq trajectory -- is identical at
any partition count and for any backend.  That is the whole
byte-identity argument, made by construction rather than by merging
heuristics.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.shard.bridge import BridgeMessage, NodeBridge, sort_messages
from repro.shard.plan import PartitionPlan, ShardError


class SendGate:
    """An experiment's declaration of when a node may next send.

    ``next_send_ns`` is the earliest simulated time at which the node's
    own processes may call ``bridge.send`` (``None`` = never again).
    Replies fired from inbound-message handlers are covered separately
    by the runtime's pending-delivery tracking, so gates only describe
    *self-initiated* sends.
    """

    __slots__ = ("next_send_ns",)

    def __init__(self, next_send_ns: Optional[float] = None) -> None:
        self.next_send_ns = next_send_ns


class NodeCell:
    """One Compute Node's simulation island inside a partition."""

    def __init__(self, node_id: int, sim) -> None:
        self.node_id = node_id
        self.sim = sim
        self.bridge: Optional[NodeBridge] = None   # set by the runtime
        self.handlers: Dict[str, Callable[[BridgeMessage], None]] = {}
        self.gates: List[SendGate] = []
        self.fragment: Optional[Callable[[], dict]] = None
        self.capturer: Optional[Callable[[], dict]] = None  # checkpoint state

    def gate(self, next_send_ns: Optional[float] = None) -> SendGate:
        g = SendGate(next_send_ns)
        self.gates.append(g)
        return g

    def on(self, kind: str, handler: Callable[[BridgeMessage], None]) -> None:
        if kind in self.handlers:
            raise ShardError(f"duplicate handler for {kind!r} on node {self.node_id}")
        self.handlers[kind] = handler


class PartitionRuntime:
    """All node cells of one partition plus the sync bookkeeping.

    Implements the shard-client protocol the coordinator drives:
    ``eot`` / ``advance`` / ``deliver`` / ``fragments``.  The inline and
    process backends both wrap exactly this object, so grant math and
    delivery ordering cannot diverge between them.
    """

    def __init__(self, partition: int, plan: PartitionPlan) -> None:
        self.partition = partition
        self.plan = plan
        self.cells: Dict[int, NodeCell] = {}
        # min-tracking for scheduled-but-unfired inbound deliveries: a
        # handler may reply the moment its message fires, so every
        # pending delivery is a potential send time
        self._pending: List[float] = []
        self._fired: Dict[float, int] = {}
        self.delivered = 0

    def add_cell(self, cell: NodeCell) -> NodeCell:
        if self.plan.partition_of(cell.node_id) != self.partition:
            raise ShardError(
                f"node {cell.node_id} does not belong to partition {self.partition}"
            )
        if cell.node_id in self.cells:
            raise ShardError(f"duplicate cell for node {cell.node_id}")
        cell.bridge = NodeBridge(cell.node_id, cell.sim, self.plan.lookahead_ns)
        self.cells[cell.node_id] = cell
        return cell

    # ------------------------------------------------------------------
    # shard-client protocol
    # ------------------------------------------------------------------
    def eot(self) -> Tuple[Optional[float], Optional[float]]:
        """(earliest pending event, earliest possible send) or Nones."""
        nxt: Optional[float] = None
        send: Optional[float] = None
        for node_id in sorted(self.cells):
            cell = self.cells[node_id]
            t = cell.sim.peek()
            if t is not None and (nxt is None or t < nxt):
                nxt = t
            for gate in cell.gates:
                g = gate.next_send_ns
                if g is not None and (send is None or g < send):
                    send = g
        pend = self._earliest_pending()
        if pend is not None and (send is None or pend < send):
            send = pend
        return nxt, send

    def advance(self, horizon: float) -> Tuple[int, List[BridgeMessage]]:
        """Fire everything below ``horizon``; return (fired, outbox)."""
        fired = 0
        out: List[BridgeMessage] = []
        for node_id in sorted(self.cells):
            cell = self.cells[node_id]
            if math.isinf(horizon):
                before = cell.sim.events_processed
                cell.sim.run()
                fired += cell.sim.events_processed - before
            else:
                fired += cell.sim.run_window(horizon)
            out.extend(cell.bridge.drain())
        if out and math.isinf(horizon):
            raise ShardError(
                "bridge send during an unbounded window: the sending node "
                "has no registered SendGate covering it"
            )
        return fired, out

    def deliver(self, messages: List[BridgeMessage]) -> None:
        """Schedule inbound messages (already in canonical order)."""
        for msg in messages:
            cell = self.cells.get(msg.dst_node)
            if cell is None:
                raise ShardError(
                    f"message for node {msg.dst_node} routed to partition "
                    f"{self.partition}"
                )
            heapq.heappush(self._pending, msg.deliver_ns)
            cell.sim.schedule_at(msg.deliver_ns, self._dispatch, cell, msg)
            self.delivered += 1

    def fragments(self) -> Dict[int, dict]:
        """Every cell's report fragment, keyed by node id."""
        out: Dict[int, dict] = {}
        for node_id in sorted(self.cells):
            cell = self.cells[node_id]
            if cell.fragment is None:
                raise ShardError(f"node {node_id} has no fragment collector")
            out[node_id] = cell.fragment()
        return out

    def capture(self) -> Dict[int, dict]:
        """Checkpoint state per node (cells without a capturer are skipped)."""
        out: Dict[int, dict] = {}
        for node_id in sorted(self.cells):
            cell = self.cells[node_id]
            if cell.capturer is not None:
                out[node_id] = cell.capturer()
        return out

    # ------------------------------------------------------------------
    def _dispatch(self, cell: NodeCell, msg: BridgeMessage) -> None:
        self._fired[msg.deliver_ns] = self._fired.get(msg.deliver_ns, 0) + 1
        cell.bridge.received += 1
        handler = cell.handlers.get(msg.kind)
        if handler is None:
            raise ShardError(
                f"node {cell.node_id} has no handler for bridge kind {msg.kind!r}"
            )
        handler(msg)

    def _earliest_pending(self) -> Optional[float]:
        heap, fired = self._pending, self._fired
        while heap:
            t = heap[0]
            n = fired.get(t, 0)
            if n:
                if n == 1:
                    del fired[t]
                else:
                    fired[t] = n - 1
                heapq.heappop(heap)
                continue
            return t
        return None


@dataclass
class SyncStats:
    """Partition-count-invariant protocol counters (safe to report)."""

    windows: int = 0
    messages: int = 0
    events: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "windows": self.windows,
            "messages": self.messages,
            "events": self.events,
        }


def run_conservative(
    plan: PartitionPlan,
    shards: List,
    pause_at_ns: Optional[float] = None,
) -> SyncStats:
    """Drive the window loop over shard clients until global quiescence.

    ``shards`` are objects speaking the shard-client protocol (inline
    :class:`PartitionRuntime` instances or process-backend proxies).
    ``pause_at_ns`` stops the loop once every partition's next event is
    at or beyond that time (the sharded checkpoint boundary): everything
    below fired, nothing at or above did.
    """
    stats = SyncStats()
    while True:
        eots = [s.eot() for s in shards]
        nexts = [e for e, _ in eots if e is not None]
        if not nexts:
            break
        earliest = min(nexts)
        if pause_at_ns is not None and earliest >= pause_at_ns:
            break
        sends = [s for _, s in eots if s is not None]
        horizon = (min(sends) + plan.lookahead_ns) if sends else math.inf
        if pause_at_ns is not None:
            horizon = min(horizon, pause_at_ns)
        if horizon <= earliest:
            raise ShardError(
                f"stalled window: horizon {horizon} ns cannot reach the "
                f"earliest event at {earliest} ns (a SendGate was left in "
                "the past)"
            )
        fired = 0
        out: List[BridgeMessage] = []
        # split-phase: post the window to every shard before collecting
        # any reply, so process-backend shards advance concurrently;
        # replies are still folded in shard order, so ordering is
        # backend-invariant
        split = [shard for shard in shards if hasattr(shard, "advance_post")]
        for shard in split:
            shard.advance_post(horizon)
        for shard in shards:
            if shard in split:
                f, o = shard.advance_wait()
            else:
                f, o = shard.advance(horizon)
            fired += f
            out.extend(o)
        stats.windows += 1
        stats.events += fired
        if out:
            ordered = sort_messages(out)
            stats.messages += len(ordered)
            for shard in shards:
                mine = [
                    m for m in ordered
                    if plan.partition_of(m.dst_node) == shard.partition
                ]
                if mine:
                    shard.deliver(mine)
        elif fired == 0:
            raise ShardError("window fired no events and moved no messages")
    return stats
