"""Template-based partition bring-up.

Building a sharded machine means building many *identical* Compute
Nodes.  Everything that is a pure function of the node parameters --
the fabric tile grid and its prefix sums, the frozen region budget, the
NUMA hop-distance matrix, the intra-node shortest-path routes, the intra
tree diameter -- is computed once per distinct shape and shared across
clones as immutable state.  Mutable simulation objects (Workers, caches,
links, queues) are always built fresh per node, so behaviour is
bit-identical to an untemplated build; the legacy monolithic
constructors never use templates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

from repro.core.compute_node import ComputeNode, ComputeNodeParams


@dataclass
class NodeTemplate:
    """Shared immutable bring-up structures for one node shape."""

    params: ComputeNodeParams
    grid: object = None                 # fabric.floorplan.TileGrid
    budget: Optional[list] = None       # frozen Placement list
    numa_distances: Optional[Dict[tuple, int]] = None
    route_paths: Dict[Tuple[Hashable, Hashable], Tuple[Hashable, ...]] = field(
        default_factory=dict
    )
    intra_diameter: int = 0

    @classmethod
    def for_params(cls, params: ComputeNodeParams) -> "NodeTemplate":
        """Derive a template by building one throwaway reference node."""
        from repro.sim import Simulator

        scratch = Simulator()
        node = ComputeNode(scratch, params, node_id=0)
        # warm every worker-pair route once; clones replay the label paths
        for a in node.endpoints:
            for b in node.endpoints:
                node.network.route(a, b)
        w0 = node.workers[0]
        return cls(
            params=params,
            grid=w0.floorplanner.grid,
            budget=list(w0.floorplanner.budget_regions(params.worker.fabric_regions)),
            numa_distances=node.numa.distance_table(),
            route_paths=node.network.route_paths(),
            intra_diameter=node.network.diameter_hops(node.endpoints),
        )


class TemplateCache:
    """Per-bring-up cache of :class:`NodeTemplate` by node parameters."""

    def __init__(self) -> None:
        self._by_params: Dict[ComputeNodeParams, NodeTemplate] = {}

    def get(self, params: ComputeNodeParams) -> NodeTemplate:
        tpl = self._by_params.get(params)
        if tpl is None:
            tpl = NodeTemplate.for_params(params)
            self._by_params[params] = tpl
        return tpl


#: process-wide template cache: templates are pure functions of the node
#: parameters, so one per distinct shape per process is always correct.
#: Forked partition workers inherit whatever the coordinator warmed.
_SHARED_CACHE = TemplateCache()


def shared_template_cache() -> TemplateCache:
    return _SHARED_CACHE


def build_node(
    sim,
    params: ComputeNodeParams,
    node_id: int,
    cache: Optional[TemplateCache] = None,
) -> ComputeNode:
    """One Compute Node on its own simulator, via the template cache."""
    template = cache.get(params) if cache is not None else None
    return ComputeNode(sim, params, node_id=node_id, template=template)
