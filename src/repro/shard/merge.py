"""Deterministic merging of per-node report fragments.

Fragments arrive from partitions as plain dicts (picklable across the
process backend).  Everything order-sensitive -- float accumulation,
event streams, node listings -- is folded strictly in ascending node-id
order, never in partition or completion order, so the merged canonical
JSON is byte-identical at any partition count and on any backend.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional


def node_order(fragments: Dict[int, dict]) -> List[int]:
    return sorted(fragments)


def sum_field(fragments: Dict[int, dict], *path: str) -> float:
    """Sum a (possibly nested) numeric field in node-id order.

    Float addition is not associative-in-practice across orderings, so
    the fold order is part of the byte-identity contract.
    """
    total = 0.0
    for node_id in sorted(fragments):
        value: Any = fragments[node_id]
        for key in path:
            value = value[key]
        total += value
    return total


def max_field(fragments: Dict[int, dict], *path: str) -> float:
    best = None
    for node_id in sorted(fragments):
        value: Any = fragments[node_id]
        for key in path:
            value = value[key]
        if best is None or value > best:
            best = value
    return 0.0 if best is None else best


def merged_report(
    schema: str,
    header: Dict[str, Any],
    fragments: Dict[int, dict],
    sync: Optional[Dict[str, int]] = None,
) -> Dict[str, Any]:
    """The canonical merged report dict.

    Node fragments are keyed by the *string* node id (JSON object keys);
    consumers that need node order must sort numerically, and the
    serialized form is deterministic because json.dumps(sort_keys=True)
    is.  The partition count and backend are deliberately absent: they
    must not influence a single byte of this structure.
    """
    report: Dict[str, Any] = {"schema": schema}
    report.update(header)
    if sync is not None:
        report["sync"] = dict(sync)
    report["nodes"] = {
        str(node_id): fragments[node_id] for node_id in sorted(fragments)
    }
    return report


def report_json(report: Dict[str, Any], indent: Optional[int] = None) -> str:
    """Canonical serialized form (sorted keys, trailing newline)."""
    return json.dumps(report, indent=indent, sort_keys=True) + "\n"
