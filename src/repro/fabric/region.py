"""Reconfigurable regions and the per-Worker fabric.

Each Worker's Reconfigurable Block (Fig. 4) is divided into
partially-reconfigurable regions.  A region holds at most one accelerator
module at a time; loading a different module is a partial reconfiguration
through the (single, serialized) configuration port -- the coarse-grain
time-sharing of Section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.fabric.floorplan import Placement
from repro.fabric.module_library import AcceleratorModule
from repro.fabric.resources import ResourceVector
from repro.sim import Simulator


class RegionState(Enum):
    EMPTY = "empty"
    LOADING = "loading"
    READY = "ready"


@dataclass
class Region:
    """One partially-reconfigurable slot."""

    region_id: int
    placement: Placement
    state: RegionState = RegionState.EMPTY
    module: Optional[AcceleratorModule] = None
    loads: int = 0
    last_used_at: float = 0.0

    @property
    def capacity(self) -> ResourceVector:
        return self.placement.resources

    @property
    def function(self) -> Optional[str]:
        return self.module.function if self.module else None

    def can_host(self, module: AcceleratorModule) -> bool:
        return module.resources.fits_in(self.capacity)


class Fabric:
    """A Worker's set of reconfigurable regions."""

    def __init__(self, sim: Simulator, placements: List[Placement], name: str = "") -> None:
        if not placements:
            raise ValueError("a fabric needs at least one region")
        self.sim = sim
        self.name = name
        self.regions = [Region(i, p) for i, p in enumerate(placements)]

    def __len__(self) -> int:
        return len(self.regions)

    @property
    def total_capacity(self) -> ResourceVector:
        total = ResourceVector()
        for r in self.regions:
            total = total + r.capacity
        return total

    def region_with_function(self, function: str) -> Optional[Region]:
        """A READY region currently hosting ``function`` (MRU first)."""
        hosting = [
            r
            for r in self.regions
            if r.state is RegionState.READY and r.function == function
        ]
        if not hosting:
            return None
        return max(hosting, key=lambda r: r.last_used_at)

    def loaded_functions(self) -> List[str]:
        return sorted(
            {r.function for r in self.regions if r.state is RegionState.READY and r.function}
        )

    def free_regions(self) -> List[Region]:
        return [r for r in self.regions if r.state is RegionState.EMPTY]

    def victim_region(self, module: AcceleratorModule) -> Optional[Region]:
        """Choose where to load ``module``: an empty fitting region first,
        else the least-recently-used fitting READY region (eviction)."""
        fitting_empty = [r for r in self.free_regions() if r.can_host(module)]
        if fitting_empty:
            return fitting_empty[0]
        fitting_ready = [
            r
            for r in self.regions
            if r.state is RegionState.READY and r.can_host(module)
        ]
        if fitting_ready:
            return min(fitting_ready, key=lambda r: r.last_used_at)
        return None

    def occupancy(self) -> float:
        ready = sum(1 for r in self.regions if r.state is not RegionState.EMPTY)
        return ready / len(self.regions)
