"""The configuration port and partial-reconfiguration controller.

Loading a partial bitstream streams it through the configuration port
(ICAP/PCAP-class, one per Worker, serialized).  With compression enabled
the port carries the *compressed* stream and a hardware decompressor
reinflates at line rate -- so configuration latency, the DRAM traffic to
fetch the bitstream, and configuration energy all shrink by the
compression ratio (Section 4.3 / [11]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.fabric.bitstream import Bitstream, CompressedBitstream
from repro.fabric.module_library import AcceleratorModule
from repro.fabric.region import Fabric, Region, RegionState
from repro.sim import Resource, Simulator


@dataclass(frozen=True)
class ConfigPort:
    """Configuration-port characteristics (PCAP-class defaults)."""

    bandwidth_gbps: float = 0.4          # 400 MB/s
    energy_per_byte_pj: float = 5.0
    decompressor_overhead_ns: float = 200.0  # pipeline fill of the HW decompressor

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("config port bandwidth must be positive")

    def load_ns(self, stream: Union[Bitstream, CompressedBitstream]) -> float:
        """Time to stream one bitstream through the port."""
        t = stream.size_bytes / self.bandwidth_gbps
        if isinstance(stream, CompressedBitstream):
            t += self.decompressor_overhead_ns
        return t

    def load_energy_pj(self, stream: Union[Bitstream, CompressedBitstream]) -> float:
        return stream.size_bytes * self.energy_per_byte_pj


class ReconfigurationController:
    """Serializes partial reconfigurations of one Worker's fabric."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        port: ConfigPort = ConfigPort(),
        use_compression: bool = True,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.port = port
        self.use_compression = use_compression
        self.name = name
        self._port_lock = Resource(sim, capacity=1, name=f"{name}.cfgport")
        # armed by repro.telemetry.wiring.attach_fabric
        self.telemetry = None
        self.tel_lane = name or "fabric"
        self._span_seq = 0
        self.reconfigurations = 0
        self.evictions = 0
        self.config_bytes = 0
        self.config_energy_pj = 0.0
        self.config_time_ns = 0.0

    # ------------------------------------------------------------------
    def load_cost_ns(self, module: AcceleratorModule) -> float:
        """Analytic load latency for planning (no state change)."""
        stream: Union[Bitstream, CompressedBitstream] = module.bitstream
        if self.use_compression:
            stream = module.bitstream.compress()
        return self.port.load_ns(stream)

    # ------------------------------------------------------------------
    def load(self, module: AcceleratorModule, region: Optional[Region] = None):
        """Simulation process: load ``module`` into a region.

        ``yield from controller.load(module)``; returns the region, or
        ``None`` when no region can host the module.
        """
        target = region if region is not None else self.fabric.victim_region(module)
        if target is None:
            return None
        if not target.can_host(module):
            raise ValueError(
                f"module {module.name!r} does not fit region {target.region_id}"
            )
        if target.state is RegionState.READY:
            self.evictions += 1

        stream: Union[Bitstream, CompressedBitstream] = module.bitstream
        if self.use_compression:
            stream = module.bitstream.compress()

        target.state = RegionState.LOADING
        target.module = None
        load_ns = self.port.load_ns(stream)
        tel = self.telemetry
        span_name = None
        if tel is not None:
            # seq-suffixed so concurrent loads of one module never
            # collide on the (lane, name) open-span key
            span_name = f"reconfig:{module.name}#{self._span_seq}"
            self._span_seq += 1
            tel.begin(self.tel_lane, span_name)
        try:
            yield from self._port_lock.use(load_ns)
        finally:
            if tel is not None:
                tel.end(self.tel_lane, span_name)
                tel.event(
                    "fabric.reconfig",
                    self.tel_lane,
                    module=module.name,
                    region=target.region_id,
                    bytes=stream.size_bytes,
                    load_ns=load_ns,
                )

        self.reconfigurations += 1
        self.config_bytes += stream.size_bytes
        self.config_energy_pj += self.port.load_energy_pj(stream)
        self.config_time_ns += load_ns

        target.module = module
        target.state = RegionState.READY
        target.loads += 1
        target.last_used_at = self.sim.now
        return target

    def unload(self, region: Region) -> None:
        """Blank a region (used by defragmentation / teardown)."""
        region.module = None
        region.state = RegionState.EMPTY
