"""The accelerator module library, including its on-disk form.

The HLS tool "will generate at compile time a library with the hardware
implementations of those functions that will be implemented on
reconfigurable resources", transformed by the physical implementation
tool "automatically into an accelerator module library" (Section 4.3).

At runtime the library is what the reconfiguration daemon consults: for a
given function it holds one or more *variants* (different
area/performance trade-off points from the HLS design-space exploration),
each with its placed bitstream and a calibrated invocation-latency model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.fabric.bitstream import FRAME_BYTES, Bitstream
from repro.fabric.resources import ResourceVector


@dataclass
class AcceleratorModule:
    """One hardware implementation variant of one function.

    Timing model (classic pipelined-kernel form): processing ``n`` items
    takes ``(pipeline_depth + (n - 1) * initiation_interval)`` fabric
    cycles, at ``clock_ns`` per cycle, plus a fixed per-invocation setup.
    """

    name: str
    function: str
    resources: ResourceVector
    bitstream: Bitstream
    initiation_interval: int = 1
    pipeline_depth: int = 8
    clock_ns: float = 5.0          # 200 MHz fabric clock
    setup_ns: float = 50.0         # register writes to start one call
    energy_per_item_pj: float = 40.0
    static_power_mw: float = 30.0
    parallel_lanes: int = 1        # datapath duplication factor

    def __post_init__(self) -> None:
        if self.initiation_interval < 1 or self.pipeline_depth < 1:
            raise ValueError("II and pipeline depth must be >= 1")
        if self.clock_ns <= 0:
            raise ValueError("clock period must be positive")
        if self.parallel_lanes < 1:
            raise ValueError("need at least one lane")

    def latency_ns(self, items: int) -> float:
        """Execution time for one invocation over ``items`` work items."""
        if items <= 0:
            raise ValueError(f"items must be positive, got {items}")
        per_lane = (items + self.parallel_lanes - 1) // self.parallel_lanes
        cycles = self.pipeline_depth + (per_lane - 1) * self.initiation_interval
        return self.setup_ns + cycles * self.clock_ns

    def throughput_items_per_us(self) -> float:
        """Steady-state pipelined throughput."""
        return 1000.0 * self.parallel_lanes / (self.initiation_interval * self.clock_ns)

    def energy_pj(self, items: int, duration_ns: Optional[float] = None) -> float:
        dynamic = items * self.energy_per_item_pj
        dur = duration_ns if duration_ns is not None else self.latency_ns(items)
        static = self.static_power_mw * dur  # mW * ns = pJ
        return dynamic + static


class ModuleLibrary:
    """All compiled variants, indexed by function name."""

    def __init__(self) -> None:
        self._by_function: Dict[str, List[AcceleratorModule]] = {}
        # (function, capacity, items_hint) -> winning module; the daemon
        # issues the same lookup on every dispatch decision, and variants
        # only change via add(), which clears this
        self._best_memo: Dict[tuple, Optional[AcceleratorModule]] = {}

    def add(self, module: AcceleratorModule) -> None:
        variants = self._by_function.setdefault(module.function, [])
        if any(v.name == module.name for v in variants):
            raise ValueError(
                f"module {module.name!r} already registered for {module.function!r}"
            )
        variants.append(module)
        self._best_memo.clear()

    def functions(self) -> List[str]:
        return sorted(self._by_function)

    def variants(self, function: str) -> List[AcceleratorModule]:
        return list(self._by_function.get(function, []))

    def __contains__(self, function: str) -> bool:
        return function in self._by_function

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_function.values())

    def best_variant(
        self,
        function: str,
        capacity: Optional[ResourceVector] = None,
        items_hint: int = 1024,
    ) -> Optional[AcceleratorModule]:
        """The fastest variant (for a typical call size) that fits.

        This is the lookup the runtime's reconfiguration daemon performs
        when it decides to hardware-accelerate a function.
        """
        memo_key = (function, capacity, items_hint)
        if memo_key in self._best_memo:
            return self._best_memo[memo_key]
        candidates = [
            m
            for m in self._by_function.get(function, [])
            if capacity is None or m.resources.fits_in(capacity)
        ]
        best = (
            min(candidates, key=lambda m: m.latency_ns(items_hint))
            if candidates
            else None
        )
        self._best_memo[memo_key] = best
        return best

    def smallest_variant(self, function: str) -> Optional[AcceleratorModule]:
        candidates = self._by_function.get(function, [])
        if not candidates:
            return None
        return min(candidates, key=lambda m: m.resources.area_units())

    # ------------------------------------------------------------------
    # persistence: what the compile-time toolchain actually ships
    # ------------------------------------------------------------------
    def save(self, directory) -> int:
        """Write the library to ``directory``: one compressed ``.bit.rle``
        per module plus a ``manifest.json``.  Returns modules written."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = []
        count = 0
        for function in self.functions():
            for module in self.variants(function):
                filename = f"{module.name}.bit.rle".replace("/", "_")
                compressed = module.bitstream.compress()
                (directory / filename).write_bytes(compressed.data)
                manifest.append(
                    {
                        "name": module.name,
                        "function": module.function,
                        "bitstream_file": filename,
                        "frames": module.bitstream.frames,
                        "resources": {
                            "luts": module.resources.luts,
                            "ffs": module.resources.ffs,
                            "brams": module.resources.brams,
                            "dsps": module.resources.dsps,
                        },
                        "initiation_interval": module.initiation_interval,
                        "pipeline_depth": module.pipeline_depth,
                        "clock_ns": module.clock_ns,
                        "setup_ns": module.setup_ns,
                        "energy_per_item_pj": module.energy_per_item_pj,
                        "static_power_mw": module.static_power_mw,
                        "parallel_lanes": module.parallel_lanes,
                    }
                )
                count += 1
        (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
        return count

    @classmethod
    def load(cls, directory) -> "ModuleLibrary":
        """Reload a library written by :meth:`save` (bitstreams are
        decompressed and verified against the recorded frame counts)."""
        from repro.fabric.bitstream import decompress_rle

        directory = Path(directory)
        manifest_path = directory / "manifest.json"
        if not manifest_path.exists():
            raise FileNotFoundError(f"no manifest.json in {directory}")
        library = cls()
        for entry in json.loads(manifest_path.read_text()):
            raw = decompress_rle((directory / entry["bitstream_file"]).read_bytes())
            expected = entry["frames"] * FRAME_BYTES
            if len(raw) != expected:
                raise ValueError(
                    f"bitstream {entry['name']!r} is {len(raw)}B, "
                    f"manifest says {expected}B"
                )
            library.add(
                AcceleratorModule(
                    name=entry["name"],
                    function=entry["function"],
                    resources=ResourceVector(**entry["resources"]),
                    bitstream=Bitstream(
                        module_name=entry["name"],
                        frames=entry["frames"],
                        data=raw,
                    ),
                    initiation_interval=entry["initiation_interval"],
                    pipeline_depth=entry["pipeline_depth"],
                    clock_ns=entry["clock_ns"],
                    setup_ns=entry["setup_ns"],
                    energy_per_item_pj=entry["energy_per_item_pj"],
                    static_power_mw=entry["static_power_mw"],
                    parallel_lanes=entry["parallel_lanes"],
                )
            )
        return library
