"""GoAhead-style floorplanning for partially reconfigurable modules.

The ECOSCALE Physical Implementation Tool "extends the existing GoAhead
framework" and performs "resource budgeting, floorplanning, communication
infrastructure synthesis and physical constraint generation ... By
minimizing module bounding boxes ... we will reduce memory requirements,
configuration latency and configuration power consumption" (Section 4.3).

The fabric is a column-structured tile grid like a real FPGA: most
columns are CLBs, with periodic BRAM and DSP columns.  The floorplanner
scans candidate bounding boxes (full-height column spans, matching
frame-based partial reconfiguration granularity) and picks the narrowest
span satisfying a module's :class:`ResourceVector` -- minimizing exactly
the quantity that determines bitstream size: the number of configuration
frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fabric.resources import ResourceVector

#: resources provided by one tile of each column type, per grid row
_TILE_RESOURCES = {
    "clb": ResourceVector(luts=8, ffs=16),
    "bram": ResourceVector(brams=1),
    "dsp": ResourceVector(dsps=1),
}

#: configuration frames per column (independent of type, first order)
FRAMES_PER_COLUMN = 4


@dataclass(frozen=True)
class TileGrid:
    """A column-structured fabric: ``columns[i]`` is a column type string.

    The default pattern mirrors mid-size Zynq-class parts: a BRAM column
    every 6 columns and a DSP column every 7, CLBs elsewhere.
    """

    columns: Tuple[str, ...]
    rows: int = 50

    def __post_init__(self) -> None:
        if self.rows < 1 or not self.columns:
            raise ValueError("grid needs at least one row and one column")
        for c in self.columns:
            if c not in _TILE_RESOURCES:
                raise ValueError(f"unknown column type {c!r}")
        # Per-resource prefix sums so any column span is an O(1) query.
        # The floorplanner probes O(ncols^2) candidate spans per placement;
        # without these each probe allocated a ResourceVector per column.
        n = len(self.columns)
        rows = self.rows
        luts = [0] * (n + 1)
        ffs = [0] * (n + 1)
        brams = [0] * (n + 1)
        dsps = [0] * (n + 1)
        for i, c in enumerate(self.columns):
            r = _TILE_RESOURCES[c]
            luts[i + 1] = luts[i] + r.luts * rows
            ffs[i + 1] = ffs[i] + r.ffs * rows
            brams[i + 1] = brams[i] + r.brams * rows
            dsps[i + 1] = dsps[i] + r.dsps * rows
        object.__setattr__(self, "_prefix", (luts, ffs, brams, dsps))

    @classmethod
    def standard(cls, num_columns: int = 60, rows: int = 50) -> "TileGrid":
        cols = []
        for i in range(num_columns):
            if i % 7 == 3:
                cols.append("dsp")
            elif i % 6 == 2:
                cols.append("bram")
            else:
                cols.append("clb")
        return cls(tuple(cols), rows)

    def column_resources(self, index: int) -> ResourceVector:
        return _TILE_RESOURCES[self.columns[index]] * self.rows

    def span_resources(self, start: int, width: int) -> ResourceVector:
        if start < 0 or width < 0 or start + width > len(self.columns):
            raise IndexError(f"span [{start}, {start + width}) outside grid")
        luts, ffs, brams, dsps = self._prefix  # type: ignore[attr-defined]
        end = start + width
        return ResourceVector(
            luts[end] - luts[start],
            ffs[end] - ffs[start],
            brams[end] - brams[start],
            dsps[end] - dsps[start],
        )

    @property
    def total_resources(self) -> ResourceVector:
        return self.span_resources(0, len(self.columns))


@dataclass(frozen=True)
class Placement:
    """A chosen bounding box: a contiguous column span."""

    start_column: int
    width: int
    resources: ResourceVector

    @property
    def frames(self) -> int:
        return self.width * FRAMES_PER_COLUMN

    def overlaps(self, other: "Placement") -> bool:
        return (
            self.start_column < other.start_column + other.width
            and other.start_column < self.start_column + self.width
        )


class Floorplanner:
    """Minimal-bounding-box placement onto a :class:`TileGrid`."""

    def __init__(self, grid: TileGrid) -> None:
        self.grid = grid

    def smallest_span(
        self,
        demand: ResourceVector,
        forbidden: Optional[List[Placement]] = None,
    ) -> Optional[Placement]:
        """The narrowest free column span covering ``demand``.

        Returns ``None`` when nothing fits.  Ties are broken leftmost,
        keeping free space consolidated (less fragmentation).
        """
        grid = self.grid
        ncols = len(grid.columns)
        occupied = [(p.start_column, p.start_column + p.width) for p in (forbidden or [])]
        luts, ffs, brams, dsps = grid._prefix  # type: ignore[attr-defined]
        need_l, need_f, need_b, need_d = demand.luts, demand.ffs, demand.brams, demand.dsps
        # Same scan order as the naive version (width-major, leftmost-first)
        # but each candidate is four prefix-sum diffs instead of a fresh
        # ResourceVector per column plus a Placement allocation.
        for width in range(1, ncols + 1):
            for start in range(0, ncols - width + 1):
                end = start + width
                if any(start < o_end and o_start < end for o_start, o_end in occupied):
                    continue
                if (
                    need_l <= luts[end] - luts[start]
                    and need_f <= ffs[end] - ffs[start]
                    and need_b <= brams[end] - brams[start]
                    and need_d <= dsps[end] - dsps[start]
                ):
                    return Placement(start, width, grid.span_resources(start, width))
        return None

    def budget_regions(self, region_count: int) -> List[Placement]:
        """Resource budgeting: carve the grid into ``region_count`` equal
        column spans -- the static region layout the middleware manages."""
        if region_count < 1:
            raise ValueError("need at least one region")
        ncols = len(self.grid.columns)
        if region_count > ncols:
            raise ValueError(
                f"cannot carve {region_count} regions out of {ncols} columns"
            )
        base = ncols // region_count
        extra = ncols % region_count
        placements = []
        start = 0
        for r in range(region_count):
            width = base + (1 if r < extra else 0)
            placements.append(
                Placement(start, width, self.grid.span_resources(start, width))
            )
            start += width
        return placements

    def fill_fraction(self, demand: ResourceVector, placement: Placement) -> float:
        """How much of the bounding box the module actually uses -- this
        drives bitstream compressibility (sparse boxes compress well)."""
        if placement.resources.is_zero:
            return 1.0
        frac = demand.utilization_of(placement.resources)
        return min(1.0, frac)
