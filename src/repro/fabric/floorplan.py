"""GoAhead-style floorplanning for partially reconfigurable modules.

The ECOSCALE Physical Implementation Tool "extends the existing GoAhead
framework" and performs "resource budgeting, floorplanning, communication
infrastructure synthesis and physical constraint generation ... By
minimizing module bounding boxes ... we will reduce memory requirements,
configuration latency and configuration power consumption" (Section 4.3).

The fabric is a column-structured tile grid like a real FPGA: most
columns are CLBs, with periodic BRAM and DSP columns.  The floorplanner
scans candidate bounding boxes (full-height column spans, matching
frame-based partial reconfiguration granularity) and picks the narrowest
span satisfying a module's :class:`ResourceVector` -- minimizing exactly
the quantity that determines bitstream size: the number of configuration
frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fabric.resources import ResourceVector

#: resources provided by one tile of each column type, per grid row
_TILE_RESOURCES = {
    "clb": ResourceVector(luts=8, ffs=16),
    "bram": ResourceVector(brams=1),
    "dsp": ResourceVector(dsps=1),
}

#: configuration frames per column (independent of type, first order)
FRAMES_PER_COLUMN = 4


@dataclass(frozen=True)
class TileGrid:
    """A column-structured fabric: ``columns[i]`` is a column type string.

    The default pattern mirrors mid-size Zynq-class parts: a BRAM column
    every 6 columns and a DSP column every 7, CLBs elsewhere.
    """

    columns: Tuple[str, ...]
    rows: int = 50

    def __post_init__(self) -> None:
        if self.rows < 1 or not self.columns:
            raise ValueError("grid needs at least one row and one column")
        for c in self.columns:
            if c not in _TILE_RESOURCES:
                raise ValueError(f"unknown column type {c!r}")

    @classmethod
    def standard(cls, num_columns: int = 60, rows: int = 50) -> "TileGrid":
        cols = []
        for i in range(num_columns):
            if i % 7 == 3:
                cols.append("dsp")
            elif i % 6 == 2:
                cols.append("bram")
            else:
                cols.append("clb")
        return cls(tuple(cols), rows)

    def column_resources(self, index: int) -> ResourceVector:
        return _TILE_RESOURCES[self.columns[index]] * self.rows

    def span_resources(self, start: int, width: int) -> ResourceVector:
        total = ResourceVector()
        for i in range(start, start + width):
            total = total + self.column_resources(i)
        return total

    @property
    def total_resources(self) -> ResourceVector:
        return self.span_resources(0, len(self.columns))


@dataclass(frozen=True)
class Placement:
    """A chosen bounding box: a contiguous column span."""

    start_column: int
    width: int
    resources: ResourceVector

    @property
    def frames(self) -> int:
        return self.width * FRAMES_PER_COLUMN

    def overlaps(self, other: "Placement") -> bool:
        return (
            self.start_column < other.start_column + other.width
            and other.start_column < self.start_column + self.width
        )


class Floorplanner:
    """Minimal-bounding-box placement onto a :class:`TileGrid`."""

    def __init__(self, grid: TileGrid) -> None:
        self.grid = grid

    def smallest_span(
        self,
        demand: ResourceVector,
        forbidden: Optional[List[Placement]] = None,
    ) -> Optional[Placement]:
        """The narrowest free column span covering ``demand``.

        Returns ``None`` when nothing fits.  Ties are broken leftmost,
        keeping free space consolidated (less fragmentation).
        """
        ncols = len(self.grid.columns)
        occupied = forbidden or []
        best: Optional[Placement] = None
        for width in range(1, ncols + 1):
            for start in range(0, ncols - width + 1):
                candidate = Placement(start, width, self.grid.span_resources(start, width))
                if any(candidate.overlaps(p) for p in occupied):
                    continue
                if demand.fits_in(candidate.resources):
                    best = candidate
                    break
            if best is not None:
                break
        return best

    def budget_regions(self, region_count: int) -> List[Placement]:
        """Resource budgeting: carve the grid into ``region_count`` equal
        column spans -- the static region layout the middleware manages."""
        if region_count < 1:
            raise ValueError("need at least one region")
        ncols = len(self.grid.columns)
        if region_count > ncols:
            raise ValueError(
                f"cannot carve {region_count} regions out of {ncols} columns"
            )
        base = ncols // region_count
        extra = ncols % region_count
        placements = []
        start = 0
        for r in range(region_count):
            width = base + (1 if r < extra else 0)
            placements.append(
                Placement(start, width, self.grid.span_resources(start, width))
            )
            start += width
        return placements

    def fill_fraction(self, demand: ResourceVector, placement: Placement) -> float:
        """How much of the bounding box the module actually uses -- this
        drives bitstream compressibility (sparse boxes compress well)."""
        if placement.resources.is_zero:
            return 1.0
        frac = demand.utilization_of(placement.resources)
        return min(1.0, frac)
