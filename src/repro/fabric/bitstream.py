"""Partial bitstreams and configuration-data compression.

The paper (Section 4.3) adopts the approach of Koch, Beckhoff and Teich,
"Hardware Decompression Techniques for FPGA-based Embedded Systems": "by
using configuration data compression, we will reduce memory requirements,
configuration latency and configuration power consumption at the same
time."

We implement a *real* byte-oriented run-length coder (the hardware
decompressor of that paper is an RLE-class design precisely because it
must sustain configuration-port line rate), plus a deterministic synthetic
configuration-data generator whose redundancy is tunable -- partial
bitstreams are dominated by long runs of zero frames for unused tiles,
which is where the compression wins come from.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Optional

_bitstream_ids = itertools.count()

#: Bytes per configuration frame (Xilinx 7-series frames are 101 words).
FRAME_BYTES = 404

_RLE_MARKER = 0x00  # escape byte; chosen because zero runs dominate

#: byte-translation table mapping the RLE marker to 0x01, identity elsewhere
_MARKER_REMAP = bytes(0x01 if b == _RLE_MARKER else b for b in range(256))


def synthesize_config_data(frames: int, fill_fraction: float, seed: int = 0) -> bytes:
    """Deterministically generate ``frames`` frames of configuration data.

    ``fill_fraction`` is the fraction of frames carrying 'real' logic
    (pseudo-random bytes); the rest are zero frames (unused tiles inside
    the module bounding box).  Dense modules therefore compress poorly,
    sparse ones very well -- the exact trade the floorplanner experiment
    measures.
    """
    if frames < 0:
        raise ValueError(f"frame count must be non-negative, got {frames}")
    if not 0.0 <= fill_fraction <= 1.0:
        raise ValueError(f"fill_fraction must be in [0, 1], got {fill_fraction}")
    filled = round(frames * fill_fraction)
    out = bytearray()
    digest = hashlib.sha256(f"ecoscale-bitstream-{seed}".encode()).digest()
    sha256 = hashlib.sha256
    # frame content depends only on (digest, i & 0xFF): memoize the 256
    # distinct frames instead of re-hashing 13 blocks per frame
    frame_cache: dict = {}
    blocks_per_frame = -(-FRAME_BYTES // 32)  # sha256 digests per frame
    for i in range(filled):
        low = i & 0xFF
        frame = frame_cache.get(low)
        if frame is None:
            # expand the seed digest into FRAME_BYTES of pseudo-random data
            raw = b"".join(
                sha256(digest + bytes((low, counter))).digest()
                for counter in range(blocks_per_frame)
            )
            # avoid the RLE escape byte in "random" data to keep frames incompressible
            frame = raw[:FRAME_BYTES].translate(_MARKER_REMAP)
            frame_cache[low] = frame
        out += frame
    # zero frames for unused tiles, appended in one bulk extend
    out += b"\x00" * (FRAME_BYTES * (frames - filled))
    return bytes(out)


def compress_rle(data: bytes) -> bytes:
    """Byte-oriented RLE: ``0x00, count, value`` encodes ``value`` repeated
    ``count`` (3..255) times; literal ``0x00`` is escaped as ``0x00, 0x00``.

    Worst-case expansion is bounded (only literal zeros expand, 2x), and
    long zero runs -- the dominant content of partial bitstreams -- shrink
    by ~85x.
    """
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        b = data[i]
        run = 1
        while i + run < n and run < 255 and data[i + run] == b:
            run += 1
        if run >= 3:
            out.extend((_RLE_MARKER, run, b))
            i += run
        elif b == _RLE_MARKER:
            out.extend((_RLE_MARKER, 0))
            i += 1
        else:
            out.append(b)
            i += 1
    return bytes(out)


def decompress_rle(data: bytes) -> bytes:
    """Inverse of :func:`compress_rle`."""
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        b = data[i]
        if b != _RLE_MARKER:
            out.append(b)
            i += 1
            continue
        if i + 1 >= n:
            raise ValueError("truncated RLE escape sequence")
        count = data[i + 1]
        if count == 0:
            out.append(_RLE_MARKER)
            i += 2
        else:
            if i + 2 >= n:
                raise ValueError("truncated RLE run")
            out.extend(bytes([data[i + 2]]) * count)
            i += 3
    return bytes(out)


@dataclass
class Bitstream:
    """A partial bitstream for one accelerator module in one region shape."""

    module_name: str
    frames: int
    data: bytes
    bitstream_id: int = field(default_factory=lambda: next(_bitstream_ids))

    def __post_init__(self) -> None:
        if self.frames < 0:
            raise ValueError("frame count must be non-negative")
        if len(self.data) != self.frames * FRAME_BYTES:
            raise ValueError(
                f"data length {len(self.data)} != frames*FRAME_BYTES "
                f"({self.frames * FRAME_BYTES})"
            )

    @property
    def size_bytes(self) -> int:
        return len(self.data)

    def compress(self) -> "CompressedBitstream":
        compressed = compress_rle(self.data)
        return CompressedBitstream(
            module_name=self.module_name,
            frames=self.frames,
            data=compressed,
            raw_size=self.size_bytes,
        )

    @classmethod
    def synthesize(
        cls, module_name: str, frames: int, fill_fraction: float, seed: int = 0
    ) -> "Bitstream":
        return cls(
            module_name=module_name,
            frames=frames,
            data=synthesize_config_data(frames, fill_fraction, seed),
        )


@dataclass
class CompressedBitstream:
    """A compressed bitstream plus metadata for on-the-fly decompression."""

    module_name: str
    frames: int
    data: bytes
    raw_size: int

    @property
    def size_bytes(self) -> int:
        return len(self.data)

    @property
    def compression_ratio(self) -> float:
        """raw / compressed; > 1 means the compression won."""
        return self.raw_size / len(self.data) if self.data else float("inf")

    def decompress(self) -> Bitstream:
        raw = decompress_rle(self.data)
        if len(raw) != self.raw_size:
            raise ValueError(
                f"decompressed size {len(raw)} != recorded raw size {self.raw_size}"
            )
        return Bitstream(module_name=self.module_name, frames=self.frames, data=raw)
