"""FPGA resource vectors (LUTs, flip-flops, BRAMs, DSPs)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceVector:
    """A count of each FPGA primitive type.

    Supports the arithmetic the HLS estimator and the floorplanner need:
    addition (compose datapaths), integer scaling (duplication/unrolling)
    and ``fits_in`` (placement feasibility).
    """

    luts: int = 0
    ffs: int = 0
    brams: int = 0
    dsps: int = 0

    def __post_init__(self) -> None:
        if min(self.luts, self.ffs, self.brams, self.dsps) < 0:
            raise ValueError(f"resource counts must be non-negative: {self}")

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.brams + other.brams,
            self.dsps + other.dsps,
        )

    def __mul__(self, k: int) -> "ResourceVector":
        if k < 0:
            raise ValueError(f"cannot scale resources by negative factor {k}")
        return ResourceVector(self.luts * k, self.ffs * k, self.brams * k, self.dsps * k)

    __rmul__ = __mul__

    def fits_in(self, capacity: "ResourceVector") -> bool:
        return (
            self.luts <= capacity.luts
            and self.ffs <= capacity.ffs
            and self.brams <= capacity.brams
            and self.dsps <= capacity.dsps
        )

    def utilization_of(self, capacity: "ResourceVector") -> float:
        """The binding (maximum) utilization fraction across resource types."""
        fractions = []
        for need, have in (
            (self.luts, capacity.luts),
            (self.ffs, capacity.ffs),
            (self.brams, capacity.brams),
            (self.dsps, capacity.dsps),
        ):
            if need == 0:
                continue
            if have == 0:
                return float("inf")
            fractions.append(need / have)
        return max(fractions) if fractions else 0.0

    @property
    def is_zero(self) -> bool:
        return self.luts == self.ffs == self.brams == self.dsps == 0

    def area_units(self) -> float:
        """A single scalar 'silicon area' figure used for energy/area
        comparisons (weights approximate relative tile sizes)."""
        return self.luts + 0.5 * self.ffs + 120.0 * self.brams + 40.0 * self.dsps
