"""Configuration-memory scrubbing: SEU detection by readback.

FPGAs in large systems accumulate single-event upsets in configuration
memory; the standard defence (and the detection half of the paper's
resilience story) is a *scrubber* that periodically reads frames back
through the configuration port and compares them against the golden
bitstream.  On a mismatch the region is reported faulty so the recovery
machinery (:mod:`repro.core.resilience`) can reload it.

The model is functional: :meth:`inject_upset` really flips bits in a
copy of the region's configuration data, and the scrubber really
compares bytes -- detection latency depends on where the scrub cursor
is, exactly as on silicon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.fabric.bitstream import FRAME_BYTES
from repro.fabric.region import Fabric, Region, RegionState
from repro.sim import Simulator, Timeout


@dataclass
class UpsetRecord:
    region_id: int
    frame: int
    bit: int
    injected_at: float
    detected_at: Optional[float] = None

    @property
    def detection_ns(self) -> Optional[float]:
        if self.detected_at is None:
            return None
        return self.detected_at - self.injected_at


class ConfigScrubber:
    """Round-robin frame readback over one Worker's fabric."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        readback_bandwidth_gbps: float = 0.4,
        on_fault: Optional[Callable[[Region, int], None]] = None,
    ) -> None:
        if readback_bandwidth_gbps <= 0:
            raise ValueError("readback bandwidth must be positive")
        self.sim = sim
        self.fabric = fabric
        self.readback_bandwidth_gbps = readback_bandwidth_gbps
        self.on_fault = on_fault
        # live config memory per region, keyed to the loaded module so a
        # reload (even of an equally-sized module) resets the copy
        self._live: Dict[int, Tuple[str, bytearray]] = {}
        self.upsets: List[UpsetRecord] = []
        self.frames_scrubbed = 0
        self.faults_detected = 0
        self._running = True

    # ------------------------------------------------------------------
    def _golden(self, region: Region) -> Optional[bytes]:
        if region.module is None:
            return None
        return region.module.bitstream.data

    def _live_data(self, region: Region) -> Optional[bytearray]:
        golden = self._golden(region)
        if golden is None:
            self._live.pop(region.region_id, None)
            return None
        module_name = region.module.name
        entry = self._live.get(region.region_id)
        if entry is None or entry[0] != module_name or len(entry[1]) != len(golden):
            entry = (module_name, bytearray(golden))
            self._live[region.region_id] = entry
        return entry[1]

    # ------------------------------------------------------------------
    def inject_upset(self, region_id: int, frame: int, bit: int = 0) -> UpsetRecord:
        """Flip one configuration bit in a loaded region (a real SEU)."""
        region = self.fabric.regions[region_id]
        live = self._live_data(region)
        if live is None:
            raise ValueError(f"region {region_id} holds no configuration")
        byte_index = frame * FRAME_BYTES + (bit // 8)
        if not 0 <= byte_index < len(live):
            raise ValueError(f"frame {frame} outside region {region_id}'s bitstream")
        live[byte_index] ^= 1 << (bit % 8)
        record = UpsetRecord(
            region_id=region_id, frame=frame, bit=bit, injected_at=self.sim.now
        )
        self.upsets.append(record)
        return record

    # ------------------------------------------------------------------
    def _scrub_frame(self, region: Region, frame: int) -> bool:
        """Read one frame back and compare; returns True when corrupt."""
        golden = self._golden(region)
        live = self._live_data(region)
        if golden is None or live is None:
            return False
        a = frame * FRAME_BYTES
        b = a + FRAME_BYTES
        return bytes(live[a:b]) != golden[a:b]

    def _repair_frame(self, region: Region, frame: int) -> None:
        golden = self._golden(region)
        live = self._live_data(region)
        a = frame * FRAME_BYTES
        live[a:a + FRAME_BYTES] = golden[a:a + FRAME_BYTES]

    def scrub_pass(self) -> Generator:
        """One full pass over every loaded frame (simulation process).

        Returns the number of corrupt frames found.  Each frame readback
        costs its transfer time on the configuration port.
        """
        found = 0
        for region in self.fabric.regions:
            if region.state is not RegionState.READY or region.module is None:
                continue
            frames = region.module.bitstream.frames
            for frame in range(frames):
                yield Timeout(FRAME_BYTES / self.readback_bandwidth_gbps)
                self.frames_scrubbed += 1
                if self._scrub_frame(region, frame):
                    found += 1
                    self.faults_detected += 1
                    for record in self.upsets:
                        if (
                            record.region_id == region.region_id
                            and record.frame == frame
                            and record.detected_at is None
                        ):
                            record.detected_at = self.sim.now
                    self._repair_frame(region, frame)  # scrubber rewrite
                    if self.on_fault is not None:
                        self.on_fault(region, frame)
        return found

    def run(self, interval_ns: float = 100_000.0) -> Generator:
        """Continuous scrubbing loop with idle gaps between passes."""
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        while self._running:
            yield from self.scrub_pass()
            yield Timeout(interval_ns)

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def mean_detection_ns(self) -> float:
        done = [u.detection_ns for u in self.upsets if u.detection_ns is not None]
        return sum(done) / len(done) if done else 0.0
