"""Fine-grain sharing of a loaded accelerator: the Virtualization block.

Section 4.1: "it will support fine-grain sharing of those FPGA resources,
where a function implemented in hardware can be 'called' by different
tasks or threads of an HPC application in parallel, through the
Virtualization block ... a mechanism to execute multiple function calls
(from different virtual machines) in a fully pipelined fashion."

:class:`VirtualizedAccelerator` models exactly that: calls from any number
of callers are admitted into the module's pipeline back-to-back, one new
call every *initiation interval*, rather than serializing whole
invocations.  The alternative (exclusive locking per call) is also
provided so experiments can quantify the win.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.fabric.module_library import AcceleratorModule
from repro.sim import Resource, Signal, Simulator, Timeout

_invocation_ids = itertools.count()


@dataclass
class Invocation:
    """One hardware function call."""

    caller: str
    items: int
    issued_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    inv_id: int = field(default_factory=lambda: next(_invocation_ids))

    @property
    def latency_ns(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.issued_at


class VirtualizedAccelerator:
    """Pipelined multi-caller front-end for one loaded module.

    In ``pipelined`` mode, admission to the datapath is serialized only
    for the *issue* phase (``items * II`` cycles -- the time the call
    occupies the pipeline's front); drain overlaps with the next call.
    In exclusive mode each call holds the accelerator for its entire
    latency.
    """

    def __init__(
        self,
        sim: Simulator,
        module: AcceleratorModule,
        pipelined: bool = True,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.module = module
        self.pipelined = pipelined
        self.name = name or f"virt.{module.name}"
        self._issue = Resource(sim, capacity=1, name=f"{self.name}.issue")
        self.completed: List[Invocation] = []
        self.items_processed = 0
        self.energy_pj = 0.0

    # ------------------------------------------------------------------
    def _issue_ns(self, items: int) -> float:
        per_lane = (items + self.module.parallel_lanes - 1) // self.module.parallel_lanes
        return per_lane * self.module.initiation_interval * self.module.clock_ns

    def _drain_ns(self) -> float:
        # The front is held for items*II (the next call may enter one II
        # after our last item); completion is (items-1)*II + depth, so the
        # residual drain after releasing the front is depth - II cycles.
        residual = max(0, self.module.pipeline_depth - self.module.initiation_interval)
        return residual * self.module.clock_ns

    def call(self, caller: str, items: int):
        """Simulation process for one call; returns the :class:`Invocation`.

        ``result = yield from accel.call("task3", 4096)``
        """
        if items <= 0:
            raise ValueError(f"items must be positive, got {items}")
        inv = Invocation(caller=caller, items=items, issued_at=self.sim.now)

        if self.pipelined:
            # occupy the pipeline front for setup + issue, then drain
            # concurrently with the next caller's issue.
            req = self._issue.request()
            yield req
            inv.started_at = self.sim.now
            try:
                yield Timeout(self.module.setup_ns + self._issue_ns(items))
            finally:
                self._issue.release(req)
            yield Timeout(self._drain_ns())
        else:
            req = self._issue.request()
            yield req
            inv.started_at = self.sim.now
            try:
                yield Timeout(self.module.latency_ns(items))
            finally:
                self._issue.release(req)

        inv.finished_at = self.sim.now
        self.completed.append(inv)
        self.items_processed += items
        self.energy_pj += self.module.energy_pj(
            items, duration_ns=inv.finished_at - inv.started_at
        )
        return inv

    # ------------------------------------------------------------------
    def mean_latency_ns(self) -> float:
        done = [i.latency_ns for i in self.completed if i.latency_ns is not None]
        return sum(done) / len(done) if done else 0.0

    def throughput_items_per_us(self) -> float:
        if not self.completed:
            return 0.0
        span = max(i.finished_at for i in self.completed) - min(
            i.issued_at for i in self.completed
        )
        if span <= 0:
            return float("inf")
        return 1000.0 * self.items_processed / span
