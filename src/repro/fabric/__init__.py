"""The reconfigurable fabric substrate.

Models the FPGA side of an ECOSCALE Worker: partially-reconfigurable
regions, configuration frames and bitstreams (with real compression, per
Koch et al. [11]), a GoAhead-style floorplanner [10] that turns synthesized
netlist resource demands into minimal bounding boxes, a module library,
and the configuration port through which partial bitstreams are loaded.

Fine-grain sharing -- "a function implemented in hardware can be 'called'
by different tasks or threads ... in parallel, through the Virtualization
block" (Section 4.1) -- is modelled by
:class:`~repro.fabric.virtualization.VirtualizedAccelerator`, which
pipelines invocations from many callers at the module's initiation
interval.
"""

from repro.fabric.bitstream import (
    Bitstream,
    CompressedBitstream,
    compress_rle,
    decompress_rle,
    synthesize_config_data,
)
from repro.fabric.floorplan import Floorplanner, Placement, TileGrid
from repro.fabric.module_library import AcceleratorModule, ModuleLibrary
from repro.fabric.region import Fabric, Region, RegionState
from repro.fabric.reconfiguration import ConfigPort, ReconfigurationController
from repro.fabric.resources import ResourceVector
from repro.fabric.scrubber import ConfigScrubber, UpsetRecord
from repro.fabric.virtualization import Invocation, VirtualizedAccelerator

__all__ = [
    "AcceleratorModule",
    "Bitstream",
    "CompressedBitstream",
    "ConfigScrubber",
    "ConfigPort",
    "Fabric",
    "Floorplanner",
    "Invocation",
    "ModuleLibrary",
    "Placement",
    "ReconfigurationController",
    "Region",
    "RegionState",
    "ResourceVector",
    "TileGrid",
    "UpsetRecord",
    "VirtualizedAccelerator",
    "compress_rle",
    "decompress_rle",
    "synthesize_config_data",
]
