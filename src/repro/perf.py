"""The performance-regression harness behind ``python -m repro bench``.

Times the simulator's hot paths -- the raw event loop, batched work-group
dispatch, SMMU translation, an end-to-end serving preset, and the
exascale machine-construction sweep -- and writes a canonical
``BENCH_perf.json`` (sorted keys, fixed schema) so the wall-clock
trajectory of the codebase is versioned alongside its behavior.

Schema (``repro-bench/v1``)::

    {
      "schema": "repro-bench/v1",
      "quick": false,
      "benchmarks": {
        "<name>": {
          "wall_seconds": 1.234,
          "events_processed": 100000,
          "events_per_sec": 81000.5
        },
        ...
      }
    }

``events_processed`` counts simulation events where the benchmark drives
a :class:`~repro.sim.Simulator`, and modelled operations (translations,
work items) for benchmarks that exercise a component directly; either
way ``events_per_sec`` is the throughput headline for that benchmark.

The regression gate (:func:`compare`) is what CI's bench-smoke job runs:
a benchmark fails if it got more than ``threshold`` slower than the
committed baseline *and* the absolute slowdown exceeds a small floor
(sub-100ms deltas are timer noise on shared runners, not regressions).
"""

from __future__ import annotations

import gc
import json
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: canonical output filename, written at the repository root
BENCH_FILENAME = "BENCH_perf.json"

SCHEMA = "repro-bench/v1"

#: relative slowdown tolerated before a benchmark fails the gate
DEFAULT_THRESHOLD = 0.30

#: absolute slowdown floor (seconds): deltas below this never fail
NOISE_FLOOR_SECONDS = 0.1


# ----------------------------------------------------------------------
# individual benchmarks.  Each returns (events_processed,) after doing
# its work; the harness supplies the timing around it.
# ----------------------------------------------------------------------
def bench_sim_engine(quick: bool) -> int:
    """Raw event-loop throughput: self-rescheduling callback chains."""
    from repro.sim import Simulator

    total = 20_000 if quick else 200_000
    sim = Simulator()
    chains = 16
    per_chain = total // chains

    def tick(remaining: int) -> None:
        if remaining:
            sim.schedule(1.0, tick, remaining - 1)

    for c in range(chains):
        sim.schedule(float(c), tick, per_chain - 1)
    sim.run()
    return sim.events_processed


def bench_sim_cancellation(quick: bool) -> int:
    """Schedule/cancel churn: timeouts that are mostly cancelled.

    Exercises the O(1) pending counter and heap compaction -- the
    pattern batching timers (serving) and watchdogs (chaos) produce.
    """
    from repro.sim import Simulator

    rounds = 2_000 if quick else 20_000
    sim = Simulator()

    def noop() -> None:
        pass

    for r in range(rounds):
        keep = sim.schedule(float(r) + 1.0, noop)
        for _ in range(4):
            sim.schedule(float(r) + 2.0, noop).cancel()
        assert sim.pending > 0  # O(1) now; this used to scan the heap
        del keep
    sim.run()
    return sim.events_processed


def bench_ndrange_workgroups(quick: bool) -> int:
    """Batched CPU work-group dispatch through the OpenCL layer."""
    import numpy as np

    from repro.core import ComputeNode, ComputeNodeParams, WorkerParams
    from repro.hls import saxpy_kernel
    from repro.opencl import CommandQueue, Context, DeviceType, Platform
    from repro.opencl.program import Program
    from repro.sim import Simulator

    repeats = 20 if quick else 200
    sim = Simulator()
    node = ComputeNode(
        sim, ComputeNodeParams(num_workers=1, worker=WorkerParams(cpu_cores=4))
    )
    plat = Platform(node)
    ctx = Context(plat)
    prog = Program([saxpy_kernel(8192)])
    bufs = (
        ctx.create_buffer(4 * 8192, dtype=np.float32),
        ctx.create_buffer(4 * 8192, dtype=np.float32),
    )
    queue = CommandQueue(ctx, plat.device(0, DeviceType.CPU))
    kernel = prog.kernel("saxpy").set_args(*bufs)
    for _ in range(repeats):
        queue.enqueue_nd_range(kernel, 8192, work_groups=64)
    queue.finish()
    return sim.events_processed


def bench_smmu_translate(quick: bool) -> int:
    """TLB-hit-dominated dual-stage translation (the UNIMEM fast path)."""
    from repro.memory.address import PAGE_SIZE
    from repro.memory.smmu import PageTable, Smmu, TranslationRegime

    accesses = 50_000 if quick else 500_000
    pages = 32
    s1 = PageTable("s1")
    s2 = PageTable("s2")
    for p in range(pages):
        s1.map(p, p + 100)
        s2.map(p + 100, p + 200)
    smmu = Smmu(tlb_entries=64)
    smmu.attach_context(7, TranslationRegime.NESTED, stage1=s1, stage2=s2)
    translate = smmu.translate
    for i in range(accesses):
        translate(7, ((i * 7) % pages) * PAGE_SIZE + (i % PAGE_SIZE))
    return smmu.stats.translations


def bench_serving_steady(quick: bool) -> int:
    """End-to-end serving `steady` preset (compile + serve + report)."""
    from repro.core import ComputeNode
    from repro.core.runtime.engine import ExecutionEngine
    from repro.presets import compiled_suite, node_preset, serving_preset
    from repro.serving.gateway import ServingGateway
    from repro.sim import Simulator

    scenario = serving_preset("steady")
    registry, library = compiled_suite(max_variants=2)
    sim = Simulator()
    node = ComputeNode(sim, node_preset(scenario.node))
    engine = ExecutionEngine(node, registry, library, use_daemon=False)
    gateway = ServingGateway(engine, scenario, seed=0, scenario_name="steady")
    report = gateway.run()
    report.json()  # include report serialization in the timed region
    return sim.events_processed


def bench_serving_steady_traced(quick: bool) -> int:
    """The `steady` preset with request tracing + burn-rate alerting on.

    Paired with ``serving.steady``: the two walls bound the observability
    tax (CI's trace-smoke job asserts the ratio stays under its gate).
    """
    from repro.core import ComputeNode
    from repro.core.runtime.engine import ExecutionEngine
    from repro.presets import compiled_suite, node_preset, serving_preset
    from repro.serving.alerts import BurnRatePolicy
    from repro.serving.gateway import ServingGateway
    from repro.serving.tracing import TraceConfig
    from repro.sim import Simulator

    scenario = serving_preset("steady")
    registry, library = compiled_suite(max_variants=2)
    sim = Simulator()
    node = ComputeNode(sim, node_preset(scenario.node))
    engine = ExecutionEngine(node, registry, library, use_daemon=False)
    gateway = ServingGateway(
        engine, scenario, seed=0, scenario_name="steady",
        tracing=TraceConfig(sample_every=1),       # worst case: trace all
        alerts=BurnRatePolicy(slo_scale=0.1),
    )
    report = gateway.run()
    report.json()  # include report serialization in the timed region
    return sim.events_processed


def bench_exascale_build(quick: bool) -> int:
    """The exascale example's scaling sweep: build the machine hierarchy,
    run a 4 KiB allreduce, measure the worst hop distance."""
    from repro.core import ComputeNodeParams, Machine, MachineParams
    from repro.sim import Simulator

    configs: List[Tuple[int, Optional[List[int]], int, Optional[int]]] = [
        (1, None, 4, None),
        (4, [4], 4, None),
        (16, [4, 4], 8, 4),
        (64, [4, 4, 4], 8, 4),
    ]
    if quick:
        configs = configs[:3]
    events = 0
    for nodes, fanouts, wpn, intra in configs:
        sim = Simulator()
        machine = Machine(
            sim,
            MachineParams(
                num_nodes=nodes,
                node=ComputeNodeParams(num_workers=wpn, intra_fanout=intra),
                inter_node_fanouts=fanouts,
            ),
        )
        machine.world.allreduce(4096)
        machine.max_hop_distance()
        # machine construction is the cost here (the collectives are
        # analytic): count the Workers built as the modelled operations
        events += machine.total_workers + sim.events_processed
    return events


def bench_exascale_build_warm(quick: bool) -> int:
    """The exascale sweep's node bring-up through the warm-start path.

    Same node shapes as :func:`bench_exascale_build`, but every Compute
    Node is stamped from a :class:`~repro.shard.bringup.NodeTemplate`
    via a fresh cache: the first node of each shape pays template
    construction, the rest reuse it.  Compared against
    ``machine.exascale_build`` this is the headline for what
    ``--warm-start`` buys on construction-dominated work (templated
    builds are bit-identical to cold ones, so the speedup is free).
    """
    from repro.core import ComputeNodeParams
    from repro.shard.bringup import TemplateCache, build_node
    from repro.sim import Simulator

    configs: List[Tuple[int, Optional[List[int]], int, Optional[int]]] = [
        (1, None, 4, None),
        (4, [4], 4, None),
        (16, [4, 4], 8, 4),
        (64, [4, 4, 4], 8, 4),
    ]
    if quick:
        configs = configs[:3]
    workers = 0
    for nodes, _fanouts, wpn, intra in configs:
        # fresh cache per config: measures template amortization within
        # one build, not leakage across benchmark iterations
        cache = TemplateCache()
        params = ComputeNodeParams(num_workers=wpn, intra_fanout=intra)
        for node_id in range(nodes):
            sim = Simulator()
            node = build_node(sim, params, node_id, cache=cache)
            workers += len(node)
    return workers


def make_bench_sharded_build(partitions: int) -> Callable[[bool], int]:
    """The exascale sweep through the sharded engine at one shard count.

    Same machine shapes as :func:`bench_exascale_build`; bring-up goes
    through the per-node template cache, so this is the headline for
    what sharding buys on construction-dominated work.
    """

    def bench(quick: bool) -> int:
        from repro.shard import run_sharded_build

        configs: List[Tuple[int, Optional[List[int]], int, Optional[int]]] = [
            (1, None, 4, None),
            (4, [4], 4, None),
            (16, [4, 4], 8, 4),
            (64, [4, 4, 4], 8, 4),
        ]
        if quick:
            configs = configs[:3]
        events = 0
        for nodes, fanouts, wpn, intra in configs:
            result = run_sharded_build(
                num_nodes=nodes,
                workers_per_node=wpn,
                intra_fanout=intra,
                inter_node_fanouts=fanouts,
                partitions=min(partitions, nodes),
            )
            events += result["total_workers"]
        return events

    return bench


def make_bench_sharded_serving(partitions: int) -> Callable[[bool], int]:
    """The serving `steady` preset across a 4-node sharded machine."""

    def bench(quick: bool) -> int:
        from repro.shard import run_sharded_serving

        report = run_sharded_serving(
            "steady", seed=0, num_nodes=4, partitions=min(partitions, 4)
        )
        return report["sync"]["events"]

    return bench


#: registered benchmarks, in canonical execution order
BENCHMARKS: Dict[str, Callable[[bool], int]] = {
    "sim.engine": bench_sim_engine,
    "sim.cancellation": bench_sim_cancellation,
    "opencl.ndrange_workgroups": bench_ndrange_workgroups,
    "memory.smmu_translate": bench_smmu_translate,
    "serving.steady": bench_serving_steady,
    "serving.steady.traced": bench_serving_steady_traced,
    "machine.exascale_build": bench_exascale_build,
    "machine.exascale_build.warm": bench_exascale_build_warm,
}


def benchmark_registry(partitions: int = 1) -> Dict[str, Callable[[bool], int]]:
    """The canonical suite plus the sharded-engine entries.

    ``.shard1`` entries always run (the sharded engine at one partition
    -- the byte-identity reference); a ``.shard{p}`` pair is added when
    ``partitions > 1``.  Single-threaded entries keep their historical
    names so committed baselines stay comparable.
    """
    registry = dict(BENCHMARKS)
    registry["machine.exascale_build.shard1"] = make_bench_sharded_build(1)
    registry["serving.steady.shard1"] = make_bench_sharded_serving(1)
    if partitions > 1:
        registry[f"machine.exascale_build.shard{partitions}"] = (
            make_bench_sharded_build(partitions)
        )
        registry[f"serving.steady.shard{partitions}"] = (
            make_bench_sharded_serving(partitions)
        )
    return registry


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
def run_benchmarks(
    quick: bool = False,
    only: Optional[List[str]] = None,
    progress: Optional[Callable[[str, Dict[str, Any]], None]] = None,
    partitions: int = 1,
) -> Dict[str, Any]:
    """Run the suite and return the BENCH_perf payload (not yet written)."""
    registry = benchmark_registry(partitions)
    names = list(registry) if not only else list(only)
    unknown = [n for n in names if n not in registry]
    if unknown:
        known = ", ".join(registry)
        raise KeyError(f"unknown benchmark(s) {unknown}; choose from: {known}")
    results: Dict[str, Dict[str, float]] = {}
    for name in names:
        fn = registry[name]
        # collect before and pause the collector during the timed
        # region, so one benchmark's garbage is never billed to the
        # next one's wall clock
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            events = fn(quick)
            wall = time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()
        entry = {
            "wall_seconds": round(wall, 6),
            "events_processed": int(events),
            "events_per_sec": round(events / wall, 3) if wall > 0 else 0.0,
        }
        results[name] = entry
        if progress is not None:
            progress(name, entry)
    return {"schema": SCHEMA, "quick": quick, "benchmarks": results}


def to_json(payload: Dict[str, Any]) -> str:
    """Canonical serialized form: sorted keys, two-space indent."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor: float = NOISE_FLOOR_SECONDS,
) -> List[str]:
    """Regression gate: failures for benchmarks slower than baseline.

    Returns human-readable failure lines (empty = gate passes).  Only
    benchmarks present in both payloads are compared, so adding or
    removing a benchmark never trips the gate by itself.
    """
    failures = []
    base = baseline.get("benchmarks", {})
    cur = current.get("benchmarks", {})
    for name in sorted(set(base) & set(cur)):
        old = float(base[name]["wall_seconds"])
        new = float(cur[name]["wall_seconds"])
        if new > old * (1.0 + threshold) and new - old > noise_floor:
            failures.append(
                f"{name}: {new:.3f}s vs baseline {old:.3f}s "
                f"(+{100.0 * (new - old) / old:.0f}%, threshold "
                f"{100.0 * threshold:.0f}%)"
            )
    return failures


def new_benchmarks(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> List[str]:
    """Benchmarks present in ``current`` but absent from the baseline.

    These are *informational*: a benchmark the baseline has never seen
    cannot regress, so the gate reports it as new instead of failing.
    """
    cur = set(current.get("benchmarks", {}))
    base = set(baseline.get("benchmarks", {}))
    return sorted(cur - base)
